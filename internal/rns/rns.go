// Package rns implements residue-number-system (Chinese Remainder
// Theorem) big-integer arithmetic — the representation the paper's Key
// Takeaway 3 proposes for accelerating the bigint kernels ("CRT converts
// bigint numbers to a set of int numbers, increasing parallel
// computation", citing the FHE accelerator literature).
//
// A value is held as residues modulo a set of coprime ~62-bit primes;
// addition and multiplication become independent word-sized operations per
// residue — embarrassingly parallel, unlike the carry chains of positional
// representations. Values live in Z_M for M = Πmᵢ; as long as M exceeds
// the magnitude of intermediate results, products of field elements can be
// accumulated in RNS and reduced mod p on conversion back. The ablation
// benchmark compares multiply-chain throughput against the Montgomery
// representation.
package rns

import (
	"fmt"
	"math/big"
	"math/bits"
)

// defaultModuli are ten coprime primes just below 2^62; nine suffice for
// M > p² of a 254-bit field (9 × 62 = 558 > 508 bits).
var defaultModuli = []uint64{
	4611686018427387847, // 2^62 − 57
	4611686018427387817, // 2^62 − 87
	4611686018427387787, // 2^62 − 117
	4611686018427387761, // 2^62 − 143
	4611686018427387751, // 2^62 − 153
	4611686018427387737, // 2^62 − 167
	4611686018427387733, // 2^62 − 171
	4611686018427387709, // 2^62 − 195
	4611686018427387701, // 2^62 − 203
	4611686018427387631, // 2^62 − 273
}

// System is an RNS base: the moduli and the precomputed CRT
// reconstruction constants.
type System struct {
	Moduli []uint64
	M      *big.Int // product of the moduli

	// CRT: v = Σ rᵢ·cᵢ mod M with cᵢ = (M/mᵢ)·((M/mᵢ)⁻¹ mod mᵢ).
	crt []*big.Int
}

// NewSystem builds an RNS base from the first n default moduli.
func NewSystem(n int) (*System, error) {
	if n < 2 || n > len(defaultModuli) {
		return nil, fmt.Errorf("rns: need 2..%d moduli, got %d", len(defaultModuli), n)
	}
	s := &System{Moduli: append([]uint64(nil), defaultModuli[:n]...)}
	s.M = big.NewInt(1)
	for _, m := range s.Moduli {
		mi := new(big.Int).SetUint64(m)
		if !mi.ProbablyPrime(20) {
			return nil, fmt.Errorf("rns: modulus %d is not prime", m)
		}
		s.M.Mul(s.M, mi)
	}
	s.crt = make([]*big.Int, n)
	for i, m := range s.Moduli {
		mi := new(big.Int).SetUint64(m)
		Mi := new(big.Int).Div(s.M, mi)
		inv := new(big.Int).ModInverse(new(big.Int).Mod(Mi, mi), mi)
		if inv == nil {
			return nil, fmt.Errorf("rns: moduli not coprime at %d", m)
		}
		s.crt[i] = new(big.Int).Mul(Mi, inv)
	}
	return s, nil
}

// Residues is a value in RNS form, one residue per modulus.
type Residues []uint64

// FromBig converts a non-negative integer (reduced mod M) to RNS form.
func (s *System) FromBig(v *big.Int) Residues {
	t := new(big.Int).Mod(v, s.M)
	out := make(Residues, len(s.Moduli))
	mi := new(big.Int)
	for i, m := range s.Moduli {
		mi.SetUint64(m)
		out[i] = new(big.Int).Mod(t, mi).Uint64()
	}
	return out
}

// ToBig reconstructs the integer in [0, M) from its residues via CRT.
func (s *System) ToBig(r Residues) *big.Int {
	acc := new(big.Int)
	term := new(big.Int)
	for i := range r {
		term.SetUint64(r[i])
		term.Mul(term, s.crt[i])
		acc.Add(acc, term)
	}
	return acc.Mod(acc, s.M)
}

// mulMod computes a·b mod m with a 128-bit intermediate.
func mulMod(a, b, m uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	_, rem := bits.Div64(hi%m, lo, m)
	return rem
}

// Mul multiplies two RNS values residue-wise into dst (which may alias an
// input). Every lane is independent — this is the parallelism the paper's
// takeaway refers to.
func (s *System) Mul(dst, a, b Residues) {
	for i, m := range s.Moduli {
		dst[i] = mulMod(a[i], b[i], m)
	}
}

// Add adds residue-wise.
func (s *System) Add(dst, a, b Residues) {
	for i, m := range s.Moduli {
		v := a[i] + b[i] // moduli < 2^62: no overflow
		if v >= m {
			v -= m
		}
		dst[i] = v
	}
}

// Sub subtracts residue-wise.
func (s *System) Sub(dst, a, b Residues) {
	for i, m := range s.Moduli {
		if a[i] >= b[i] {
			dst[i] = a[i] - b[i]
		} else {
			dst[i] = a[i] + m - b[i]
		}
	}
}

// Zero returns an all-zero value.
func (s *System) Zero() Residues { return make(Residues, len(s.Moduli)) }

// One returns the RNS representation of 1.
func (s *System) One() Residues {
	out := make(Residues, len(s.Moduli))
	for i := range out {
		out[i] = 1
	}
	return out
}
