package rns

import (
	"math/big"
	"testing"
	"testing/quick"

	"zkperf/internal/ff"
)

func sys(t *testing.T) *System {
	t.Helper()
	s, err := NewSystem(9)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCapacity(t *testing.T) {
	s := sys(t)
	// M must exceed p² of the BN254 scalar field for product accumulation.
	p := ff.NewBN254Fr().Modulus()
	p2 := new(big.Int).Mul(p, p)
	if s.M.Cmp(p2) <= 0 {
		t.Errorf("M (%d bits) does not exceed p² (%d bits)", s.M.BitLen(), p2.BitLen())
	}
}

func TestRoundTrip(t *testing.T) {
	s := sys(t)
	rng := ff.NewRNG(1)
	for i := 0; i < 50; i++ {
		v := randBig(rng, s.M)
		r := s.FromBig(v)
		back := s.ToBig(r)
		if back.Cmp(v) != 0 {
			t.Fatalf("round trip: got %v want %v", back, v)
		}
	}
}

func randBig(rng *ff.RNG, bound *big.Int) *big.Int {
	words := make([]big.Word, (bound.BitLen()+63)/64+1)
	for i := range words {
		words[i] = big.Word(rng.Uint64())
	}
	v := new(big.Int).SetBits(words)
	return v.Mod(v, bound)
}

func TestMulMatchesBig(t *testing.T) {
	s := sys(t)
	rng := ff.NewRNG(2)
	for i := 0; i < 50; i++ {
		a := randBig(rng, s.M)
		b := randBig(rng, s.M)
		ra, rb := s.FromBig(a), s.FromBig(b)
		out := s.Zero()
		s.Mul(out, ra, rb)
		want := new(big.Int).Mul(a, b)
		want.Mod(want, s.M)
		if s.ToBig(out).Cmp(want) != 0 {
			t.Fatalf("mul mismatch at iter %d", i)
		}
	}
}

func TestAddSubMatchBig(t *testing.T) {
	s := sys(t)
	rng := ff.NewRNG(3)
	for i := 0; i < 50; i++ {
		a := randBig(rng, s.M)
		b := randBig(rng, s.M)
		ra, rb := s.FromBig(a), s.FromBig(b)
		sum, diff := s.Zero(), s.Zero()
		s.Add(sum, ra, rb)
		s.Sub(diff, ra, rb)
		wantS := new(big.Int).Add(a, b)
		wantS.Mod(wantS, s.M)
		wantD := new(big.Int).Sub(a, b)
		wantD.Mod(wantD, s.M)
		if s.ToBig(sum).Cmp(wantS) != 0 {
			t.Fatal("add mismatch")
		}
		if s.ToBig(diff).Cmp(wantD) != 0 {
			t.Fatal("sub mismatch")
		}
	}
}

func TestIdentities(t *testing.T) {
	s := sys(t)
	one := s.One()
	if s.ToBig(one).Cmp(big.NewInt(1)) != 0 {
		t.Error("One() != 1")
	}
	rng := ff.NewRNG(4)
	a := s.FromBig(randBig(rng, s.M))
	out := s.Zero()
	s.Mul(out, a, one)
	if s.ToBig(out).Cmp(s.ToBig(a)) != 0 {
		t.Error("a·1 != a")
	}
	s.Mul(out, a, s.Zero())
	if s.ToBig(out).Sign() != 0 {
		t.Error("a·0 != 0")
	}
}

// TestFieldProductReduction verifies the intended usage pattern: multiply
// two field elements in RNS, convert back, reduce mod p — matching the
// field's own multiplication.
func TestFieldProductReduction(t *testing.T) {
	s := sys(t)
	fr := ff.NewBN254Fr()
	rng := ff.NewRNG(5)
	for i := 0; i < 20; i++ {
		var a, b, want ff.Element
		fr.Random(&a, rng)
		fr.Random(&b, rng)
		fr.Mul(&want, &a, &b)
		ra := s.FromBig(fr.BigInt(&a))
		rb := s.FromBig(fr.BigInt(&b))
		out := s.Zero()
		s.Mul(out, ra, rb)
		got := new(big.Int).Mod(s.ToBig(out), fr.Modulus())
		if got.Cmp(fr.BigInt(&want)) != 0 {
			t.Fatal("RNS field product disagrees with Montgomery multiplication")
		}
	}
}

func TestSystemValidation(t *testing.T) {
	if _, err := NewSystem(1); err == nil {
		t.Error("1-modulus system accepted")
	}
	if _, err := NewSystem(99); err == nil {
		t.Error("oversized system accepted")
	}
	for n := 2; n <= 10; n++ {
		if _, err := NewSystem(n); err != nil {
			t.Errorf("NewSystem(%d): %v", n, err)
		}
	}
}

func TestQuickLaneIndependence(t *testing.T) {
	// Residue lane i of a product depends only on lane i of the inputs —
	// the property that makes RNS parallel.
	s, err := NewSystem(4)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(a0, b0, junk uint64) bool {
		a := s.Zero()
		b := s.Zero()
		a[0], b[0] = a0%s.Moduli[0], b0%s.Moduli[0]
		a[1], b[1] = junk%s.Moduli[1], junk%s.Moduli[1]
		out1, out2 := s.Zero(), s.Zero()
		s.Mul(out1, a, b)
		a[1], b[1] = 0, 0 // perturb other lanes
		s.Mul(out2, a, b)
		return out1[0] == out2[0]
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
