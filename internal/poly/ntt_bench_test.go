package poly

import (
	"context"
	"fmt"
	"testing"

	"zkperf/internal/ff"
)

// BenchmarkNTT compares the table-driven kernel against the on-the-fly
// twiddle-chain reference (the pre-table implementation kept in
// ntt_parallel_test.go as the correctness oracle).
func BenchmarkNTT(b *testing.B) {
	fr := ff.NewBN254Fr()
	for _, logN := range []int{10, 14, 16} {
		n := 1 << uint(logN)
		d, err := NewDomain(fr, n)
		if err != nil {
			b.Fatal(err)
		}
		d.initTables() // exclude one-time table construction
		rng := ff.NewRNG(uint64(logN))
		a := make([]ff.Element, n)
		for i := range a {
			fr.Random(&a[i], rng)
		}
		buf := make([]ff.Element, n)
		b.Run(fmt.Sprintf("table/n=2^%d", logN), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				copy(buf, a)
				if err := d.NTTCtx(context.Background(), buf, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("chain-ref/n=2^%d", logN), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				copy(buf, a)
				refNTT(d, buf, &d.Root)
			}
		})
	}
}
