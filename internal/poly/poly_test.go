package poly

import (
	"testing"

	"zkperf/internal/ff"
)

func fields() []*ff.Field { return []*ff.Field{ff.NewBN254Fr(), ff.NewBLS12381Fr()} }

func TestDomainRootOrder(t *testing.T) {
	for _, fr := range fields() {
		for _, size := range []int{1, 2, 7, 16, 100, 1024} {
			d, err := NewDomain(fr, size)
			if err != nil {
				t.Fatalf("%s size %d: %v", fr.Name, size, err)
			}
			if d.N < size || d.N&(d.N-1) != 0 {
				t.Fatalf("%s: domain size %d not a power of two ≥ %d", fr.Name, d.N, size)
			}
			// ω^N == 1 and (N > 1) ω^{N/2} == −1: ω has exact order N.
			var acc ff.Element
			fr.Set(&acc, &d.Root)
			for i := 0; i < d.LogN-1; i++ {
				fr.Square(&acc, &acc)
			}
			if d.N > 1 {
				var negOne, one ff.Element
				fr.One(&one)
				fr.Neg(&negOne, &one)
				if !fr.Equal(&acc, &negOne) {
					t.Fatalf("%s: ω^{N/2} != −1 for N=%d", fr.Name, d.N)
				}
				fr.Square(&acc, &acc)
			}
			if !fr.IsOne(&acc) {
				t.Fatalf("%s: ω^N != 1 for N=%d", fr.Name, d.N)
			}
		}
	}
}

func TestDomainTooLarge(t *testing.T) {
	fr := ff.NewBN254Fr() // 2-adicity 28
	if _, err := NewDomain(fr, 1<<29); err == nil {
		t.Error("domain of size 2^29 should exceed BN254 Fr 2-adicity")
	}
	if _, err := NewDomain(fr, 0); err == nil {
		t.Error("zero-size domain should be rejected")
	}
}

func TestNTTRoundTrip(t *testing.T) {
	for _, fr := range fields() {
		d, err := NewDomain(fr, 64)
		if err != nil {
			t.Fatal(err)
		}
		rng := ff.NewRNG(1)
		a := make([]ff.Element, d.N)
		orig := make([]ff.Element, d.N)
		for i := range a {
			fr.Random(&a[i], rng)
		}
		copy(orig, a)
		d.NTT(a)
		d.INTT(a)
		for i := range a {
			if !fr.Equal(&a[i], &orig[i]) {
				t.Fatalf("%s: NTT/INTT round trip failed at %d", fr.Name, i)
			}
		}
	}
}

func TestCosetRoundTrip(t *testing.T) {
	for _, fr := range fields() {
		d, _ := NewDomain(fr, 32)
		rng := ff.NewRNG(2)
		a := make([]ff.Element, d.N)
		orig := make([]ff.Element, d.N)
		for i := range a {
			fr.Random(&a[i], rng)
		}
		copy(orig, a)
		d.CosetNTT(a)
		d.CosetINTT(a)
		for i := range a {
			if !fr.Equal(&a[i], &orig[i]) {
				t.Fatalf("%s: coset round trip failed at %d", fr.Name, i)
			}
		}
	}
}

// TestNTTMatchesEval: the forward transform agrees with direct evaluation
// at the domain points.
func TestNTTMatchesEval(t *testing.T) {
	fr := ff.NewBN254Fr()
	d, _ := NewDomain(fr, 8)
	rng := ff.NewRNG(3)
	coeffs := make([]ff.Element, d.N)
	for i := range coeffs {
		fr.Random(&coeffs[i], rng)
	}
	evals := make([]ff.Element, d.N)
	copy(evals, coeffs)
	d.NTT(evals)
	for k := 0; k < d.N; k++ {
		x := d.RootPower(k)
		want := Eval(fr, coeffs, &x)
		if !fr.Equal(&evals[k], &want) {
			t.Fatalf("NTT[%d] != p(ω^%d)", k, k)
		}
	}
}

// TestCosetNTTMatchesEval: coset evaluations are p(g·ω^k).
func TestCosetNTTMatchesEval(t *testing.T) {
	fr := ff.NewBN254Fr()
	d, _ := NewDomain(fr, 8)
	rng := ff.NewRNG(4)
	coeffs := make([]ff.Element, d.N)
	for i := range coeffs {
		fr.Random(&coeffs[i], rng)
	}
	evals := make([]ff.Element, d.N)
	copy(evals, coeffs)
	d.CosetNTT(evals)
	for k := 0; k < d.N; k++ {
		w := d.RootPower(k)
		var x ff.Element
		fr.Mul(&x, &d.CosetGen, &w)
		want := Eval(fr, coeffs, &x)
		if !fr.Equal(&evals[k], &want) {
			t.Fatalf("CosetNTT[%d] != p(g·ω^%d)", k, k)
		}
	}
}

func TestZEval(t *testing.T) {
	fr := ff.NewBN254Fr()
	d, _ := NewDomain(fr, 16)
	// Z vanishes on the domain…
	for _, k := range []int{0, 1, 7, 15} {
		x := d.RootPower(k)
		z := d.ZEval(&x)
		if !fr.IsZero(&z) {
			t.Errorf("Z(ω^%d) != 0", k)
		}
	}
	// …and is nonzero on the coset.
	var x ff.Element
	fr.Mul(&x, &d.CosetGen, &d.Root)
	z := d.ZEval(&x)
	if fr.IsZero(&z) {
		t.Error("Z(g·ω) == 0 — coset intersects the domain")
	}
}

func TestMulMatchesNaive(t *testing.T) {
	fr := ff.NewBN254Fr()
	rng := ff.NewRNG(5)
	for _, sizes := range [][2]int{{1, 1}, {3, 5}, {16, 16}, {33, 7}} {
		p := make([]ff.Element, sizes[0])
		q := make([]ff.Element, sizes[1])
		for i := range p {
			fr.Random(&p[i], rng)
		}
		for i := range q {
			fr.Random(&q[i], rng)
		}
		want := MulNaive(fr, p, q)
		got, err := Mul(fr, p, q)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("length mismatch %d vs %d", len(got), len(want))
		}
		for i := range got {
			if !fr.Equal(&got[i], &want[i]) {
				t.Fatalf("sizes %v: coefficient %d differs", sizes, i)
			}
		}
	}
}

func TestAddSubEval(t *testing.T) {
	fr := ff.NewBN254Fr()
	rng := ff.NewRNG(6)
	p := make([]ff.Element, 5)
	q := make([]ff.Element, 9)
	for i := range p {
		fr.Random(&p[i], rng)
	}
	for i := range q {
		fr.Random(&q[i], rng)
	}
	var x ff.Element
	fr.Random(&x, rng)
	sum := Add(fr, p, q)
	diff := Sub(fr, p, q)
	pe := Eval(fr, p, &x)
	qe := Eval(fr, q, &x)
	se := Eval(fr, sum, &x)
	de := Eval(fr, diff, &x)
	var want ff.Element
	fr.Add(&want, &pe, &qe)
	if !fr.Equal(&se, &want) {
		t.Error("(p+q)(x) != p(x)+q(x)")
	}
	fr.Sub(&want, &pe, &qe)
	if !fr.Equal(&de, &want) {
		t.Error("(p−q)(x) != p(x)−q(x)")
	}
}

func TestNTTLengthPanic(t *testing.T) {
	fr := ff.NewBN254Fr()
	d, _ := NewDomain(fr, 8)
	defer func() {
		if recover() == nil {
			t.Error("NTT with wrong length should panic")
		}
	}()
	d.NTT(make([]ff.Element, 4))
}
