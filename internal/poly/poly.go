// Package poly implements dense polynomial arithmetic over the scalar
// field, radix-2 number-theoretic transforms (NTT/FFT), and multiplicative
// evaluation domains with coset support. The NTT is the second dominant
// kernel of the Groth16 prover (with the MSM): it converts constraint
// evaluations to coefficient form and back when computing the quotient
// polynomial H(x).
package poly

import (
	"fmt"
	"math/big"
	"math/bits"

	"zkperf/internal/ff"
)

// Domain is a multiplicative subgroup {1, ω, ω², …, ω^{N−1}} of Fr* of
// power-of-two size, plus a coset shift used to evaluate quotients where
// the vanishing polynomial is nonzero.
type Domain struct {
	Fr   *ff.Field
	N    int
	LogN int

	Root    ff.Element // ω, a primitive N-th root of unity
	RootInv ff.Element // ω⁻¹
	NInv    ff.Element // N⁻¹ (for the inverse transform)

	CosetGen    ff.Element // multiplicative shift g (a quadratic non-residue)
	CosetGenInv ff.Element
}

// NewDomain returns a domain of the smallest power-of-two size ≥ minSize.
// It fails if the field's 2-adicity cannot accommodate the size.
func NewDomain(fr *ff.Field, minSize int) (*Domain, error) {
	if minSize < 1 {
		return nil, fmt.Errorf("poly: domain size must be positive")
	}
	n := 1
	logN := 0
	for n < minSize {
		n <<= 1
		logN++
	}

	// 2-adicity: p − 1 = q·2^s with q odd.
	pm1 := fr.Modulus()
	pm1.Sub(pm1, big.NewInt(1))
	s := 0
	q := pm1
	for q.Bit(0) == 0 {
		q.Rsh(q, 1)
		s++
	}
	if logN > s {
		return nil, fmt.Errorf("poly: field %s supports domains up to 2^%d, need 2^%d", fr.Name, s, logN)
	}

	d := &Domain{Fr: fr, N: n, LogN: logN}

	// The smallest quadratic non-residue g generates the full 2-Sylow
	// subgroup, so ω = g^{(p−1)/N} has exact order N; g itself serves as
	// the coset shift (no non-residue lies in a 2-power subgroup, whose
	// elements are all squares).
	var g ff.Element
	for v := uint64(2); ; v++ {
		fr.SetUint64(&g, v)
		if fr.Legendre(&g) == -1 {
			break
		}
	}
	exp := fr.Modulus()
	exp.Sub(exp, big.NewInt(1))
	exp.Div(exp, big.NewInt(int64(n)))
	fr.Exp(&d.Root, &g, exp)
	fr.Inverse(&d.RootInv, &d.Root)
	var nElem ff.Element
	fr.SetUint64(&nElem, uint64(n))
	fr.Inverse(&d.NInv, &nElem)
	d.CosetGen = g
	fr.Inverse(&d.CosetGenInv, &g)
	return d, nil
}

// bitReverse permutes a into bit-reversed index order in place.
func bitReverse(a []ff.Element, logN int) {
	n := len(a)
	shift := 64 - uint(logN)
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
}

// ntt is the in-place iterative Cooley-Tukey transform with the given
// root (ω for forward, ω⁻¹ for inverse).
func (d *Domain) ntt(a []ff.Element, root *ff.Element) {
	fr := d.Fr
	bitReverse(a, d.LogN)
	for length := 2; length <= d.N; length <<= 1 {
		// wLen = root^{N/length}
		var wLen ff.Element
		fr.Set(&wLen, root)
		for l := length; l < d.N; l <<= 1 {
			fr.Square(&wLen, &wLen)
		}
		half := length >> 1
		for start := 0; start < d.N; start += length {
			var w ff.Element
			fr.One(&w)
			for k := 0; k < half; k++ {
				var t ff.Element
				fr.Mul(&t, &a[start+k+half], &w)
				fr.Sub(&a[start+k+half], &a[start+k], &t)
				fr.Add(&a[start+k], &a[start+k], &t)
				fr.Mul(&w, &w, &wLen)
			}
		}
	}
}

// NTT transforms coefficients to evaluations over the domain, in place.
// len(a) must equal the domain size.
func (d *Domain) NTT(a []ff.Element) {
	d.checkLen(a)
	d.ntt(a, &d.Root)
}

// INTT transforms evaluations back to coefficients, in place.
func (d *Domain) INTT(a []ff.Element) {
	d.checkLen(a)
	d.ntt(a, &d.RootInv)
	fr := d.Fr
	for i := range a {
		fr.Mul(&a[i], &a[i], &d.NInv)
	}
}

// CosetNTT evaluates the coefficient vector over the coset g·H, in place.
func (d *Domain) CosetNTT(a []ff.Element) {
	d.checkLen(a)
	fr := d.Fr
	var pow ff.Element
	fr.One(&pow)
	for i := range a {
		fr.Mul(&a[i], &a[i], &pow)
		fr.Mul(&pow, &pow, &d.CosetGen)
	}
	d.ntt(a, &d.Root)
}

// CosetINTT interpolates coset evaluations back to coefficients, in place.
func (d *Domain) CosetINTT(a []ff.Element) {
	d.checkLen(a)
	fr := d.Fr
	d.ntt(a, &d.RootInv)
	var pow ff.Element
	fr.One(&pow)
	for i := range a {
		fr.Mul(&a[i], &a[i], &d.NInv)
		fr.Mul(&a[i], &a[i], &pow)
		fr.Mul(&pow, &pow, &d.CosetGenInv)
	}
}

func (d *Domain) checkLen(a []ff.Element) {
	if len(a) != d.N {
		panic(fmt.Sprintf("poly: slice length %d != domain size %d", len(a), d.N))
	}
}

// ZEval evaluates the vanishing polynomial Z(x) = x^N − 1 at x.
func (d *Domain) ZEval(x *ff.Element) ff.Element {
	fr := d.Fr
	var acc ff.Element
	fr.Set(&acc, x)
	for i := 0; i < d.LogN; i++ {
		fr.Square(&acc, &acc)
	}
	var one ff.Element
	fr.One(&one)
	fr.Sub(&acc, &acc, &one)
	return acc
}

// RootPower returns ω^k.
func (d *Domain) RootPower(k int) ff.Element {
	var out ff.Element
	d.Fr.ExpUint64(&out, &d.Root, uint64(k%d.N))
	return out
}

// ---------- dense polynomial helpers ----------

// Eval evaluates the coefficient vector p (low degree first) at x by
// Horner's rule.
func Eval(fr *ff.Field, p []ff.Element, x *ff.Element) ff.Element {
	var acc ff.Element
	fr.Zero(&acc)
	for i := len(p) - 1; i >= 0; i-- {
		fr.Mul(&acc, &acc, x)
		fr.Add(&acc, &acc, &p[i])
	}
	return acc
}

// Add returns p + q (coefficient-wise, result has max length).
func Add(fr *ff.Field, p, q []ff.Element) []ff.Element {
	n := len(p)
	if len(q) > n {
		n = len(q)
	}
	out := make([]ff.Element, n)
	copy(out, p)
	for i := range q {
		fr.Add(&out[i], &out[i], &q[i])
	}
	return out
}

// Sub returns p − q.
func Sub(fr *ff.Field, p, q []ff.Element) []ff.Element {
	n := len(p)
	if len(q) > n {
		n = len(q)
	}
	out := make([]ff.Element, n)
	copy(out, p)
	for i := range q {
		fr.Sub(&out[i], &out[i], &q[i])
	}
	return out
}

// MulNaive returns p·q by schoolbook convolution — the O(n²) baseline used
// in tests and the NTT ablation benchmark.
func MulNaive(fr *ff.Field, p, q []ff.Element) []ff.Element {
	if len(p) == 0 || len(q) == 0 {
		return nil
	}
	out := make([]ff.Element, len(p)+len(q)-1)
	var t ff.Element
	for i := range p {
		if fr.IsZero(&p[i]) {
			continue
		}
		for j := range q {
			fr.Mul(&t, &p[i], &q[j])
			fr.Add(&out[i+j], &out[i+j], &t)
		}
	}
	return out
}

// Mul returns p·q using NTT-based convolution.
func Mul(fr *ff.Field, p, q []ff.Element) ([]ff.Element, error) {
	if len(p) == 0 || len(q) == 0 {
		return nil, nil
	}
	outLen := len(p) + len(q) - 1
	d, err := NewDomain(fr, outLen)
	if err != nil {
		return nil, err
	}
	pa := make([]ff.Element, d.N)
	qa := make([]ff.Element, d.N)
	copy(pa, p)
	copy(qa, q)
	d.NTT(pa)
	d.NTT(qa)
	for i := range pa {
		fr.Mul(&pa[i], &pa[i], &qa[i])
	}
	d.INTT(pa)
	return pa[:outLen], nil
}
