// Package poly implements dense polynomial arithmetic over the scalar
// field, radix-2 number-theoretic transforms (NTT/FFT), and multiplicative
// evaluation domains with coset support. The NTT is the second dominant
// kernel of the Groth16 prover (with the MSM): it converts constraint
// evaluations to coefficient form and back when computing the quotient
// polynomial H(x).
package poly

import (
	"context"
	"fmt"
	"math/big"
	"math/bits"
	"sync"

	"zkperf/internal/cpumodel"
	"zkperf/internal/ff"
	"zkperf/internal/parallel"
)

// Domain is a multiplicative subgroup {1, ω, ω², …, ω^{N−1}} of Fr* of
// power-of-two size, plus a coset shift used to evaluate quotients where
// the vanishing polynomial is nonzero.
type Domain struct {
	Fr   *ff.Field
	N    int
	LogN int

	Root    ff.Element // ω, a primitive N-th root of unity
	RootInv ff.Element // ω⁻¹
	NInv    ff.Element // N⁻¹ (for the inverse transform)

	CosetGen    ff.Element // multiplicative shift g (a quadratic non-residue)
	CosetGenInv ff.Element

	// tileLog is the number of leading DIT stages fused per cache-resident
	// tile (see NTTTileLog); 0 disables tiling. Set at construction from
	// the modeled cache geometry, overridable with SetTileLog.
	tileLog int

	// Twiddle tables and coset scale vectors, built lazily on first
	// transform. A Domain is shared across concurrent proves (plonk keeps
	// one on the proving key), so initialization is Once-guarded; after
	// that the tables are read-only and safe for concurrent transforms on
	// distinct slices.
	tablesOnce  sync.Once
	twiddles    [][]ff.Element // twiddles[s][k] = (Root^{N/2^{s+1}})^k, k < 2^s
	twiddlesInv [][]ff.Element // same powers of RootInv
	cosetScale  []ff.Element   // g^i
	cosetUnwind []ff.Element   // N⁻¹·g^{−i} (N⁻¹ folded into the coset unwind)
}

// NewDomain returns a domain of the smallest power-of-two size ≥ minSize.
// It fails if the field's 2-adicity cannot accommodate the size.
func NewDomain(fr *ff.Field, minSize int) (*Domain, error) {
	if minSize < 1 {
		return nil, fmt.Errorf("poly: domain size must be positive")
	}
	n := 1
	logN := 0
	for n < minSize {
		n <<= 1
		logN++
	}

	// 2-adicity: p − 1 = q·2^s with q odd.
	pm1 := fr.Modulus()
	pm1.Sub(pm1, big.NewInt(1))
	s := 0
	q := pm1
	for q.Bit(0) == 0 {
		q.Rsh(q, 1)
		s++
	}
	if logN > s {
		return nil, fmt.Errorf("poly: field %s supports domains up to 2^%d, need 2^%d", fr.Name, s, logN)
	}

	d := &Domain{Fr: fr, N: n, LogN: logN, tileLog: defaultTileLog}

	// The smallest quadratic non-residue g generates the full 2-Sylow
	// subgroup, so ω = g^{(p−1)/N} has exact order N; g itself serves as
	// the coset shift (no non-residue lies in a 2-power subgroup, whose
	// elements are all squares).
	var g ff.Element
	for v := uint64(2); ; v++ {
		fr.SetUint64(&g, v)
		if fr.Legendre(&g) == -1 {
			break
		}
	}
	exp := fr.Modulus()
	exp.Sub(exp, big.NewInt(1))
	exp.Div(exp, big.NewInt(int64(n)))
	fr.Exp(&d.Root, &g, exp)
	fr.Inverse(&d.RootInv, &d.Root)
	var nElem ff.Element
	fr.SetUint64(&nElem, uint64(n))
	fr.Inverse(&d.NInv, &nElem)
	d.CosetGen = g
	fr.Inverse(&d.CosetGenInv, &g)
	return d, nil
}

// bitReverse permutes a into bit-reversed index order in place.
func bitReverse(a []ff.Element, logN int) {
	n := len(a)
	shift := 64 - uint(logN)
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
}

// initTables builds the per-stage twiddle tables and coset scale vectors.
// Stage s of the bit-reversed-input DIT transform needs the powers
// wLen^k for k < 2^s where wLen = root^{N/2^{s+1}}; the tables total N−1
// elements per direction. Precomputing them removes the sequential
// w *= wLen chain from the butterfly loop — one multiply per butterfly
// instead of two — and makes every butterfly in a stage independent,
// which is what lets the stages parallelize.
func (d *Domain) initTables() {
	d.tablesOnce.Do(func() {
		fr := d.Fr
		build := func(root *ff.Element) [][]ff.Element {
			tables := make([][]ff.Element, d.LogN)
			for s := 0; s < d.LogN; s++ {
				half := 1 << uint(s)
				var wLen ff.Element
				fr.Set(&wLen, root)
				for l := half << 1; l < d.N; l <<= 1 {
					fr.Square(&wLen, &wLen)
				}
				tw := make([]ff.Element, half)
				fr.One(&tw[0])
				for k := 1; k < half; k++ {
					fr.Mul(&tw[k], &tw[k-1], &wLen)
				}
				tables[s] = tw
			}
			return tables
		}
		d.twiddles = build(&d.Root)
		d.twiddlesInv = build(&d.RootInv)

		d.cosetScale = make([]ff.Element, d.N)
		d.cosetUnwind = make([]ff.Element, d.N)
		fr.One(&d.cosetScale[0])
		fr.Set(&d.cosetUnwind[0], &d.NInv)
		for i := 1; i < d.N; i++ {
			fr.Mul(&d.cosetScale[i], &d.cosetScale[i-1], &d.CosetGen)
			fr.Mul(&d.cosetUnwind[i], &d.cosetUnwind[i-1], &d.CosetGenInv)
		}
	})
}

// parallelNTTMin: below this size the per-stage fork/join overhead
// outweighs the butterfly work, so transforms run serially regardless of
// the requested thread count.
const parallelNTTMin = 1 << 9

// nttElemBytes is the in-memory footprint of one coefficient.
const nttElemBytes = int64(ff.MaxLimbs * 8)

// NTTTileLog returns the number of leading DIT stages to fuse per
// cache-resident tile on the given CPU: the largest B such that a tile of
// 2^B coefficients plus its per-stage twiddle tables (which total another
// ~2^B elements) fits in half the L2 data cache, leaving the other half
// for everything else the core touches. Stage s of the bit-reversed-input
// transform works in blocks of 2^{s+1} consecutive elements, so every
// butterfly of stages 0..B−1 stays inside one 2^B-element tile — fusing
// them turns B passes over the whole array into one.
func NTTTileLog(cpu *cpumodel.CPU) int {
	budget := int64(cpu.L2.SizeBytes / 2)
	b := 0
	for (int64(4)<<uint(b))*nttElemBytes <= budget {
		b++
	}
	return b
}

// defaultTileLog sizes tiles for the smallest L2 among the modeled testbed
// CPUs, so a tile stays resident on any of them. Tiling never changes
// results (field arithmetic is exact), only the traversal order.
var defaultTileLog = func() int {
	best := 0
	for i, cpu := range cpumodel.All() {
		b := NTTTileLog(cpu)
		if i == 0 || b < best {
			best = b
		}
	}
	return best
}()

// SetTileLog overrides the cache-tile size (2^log coefficients) used by
// the transforms; log ≤ 0 disables tiling. Exposed for tuning to a
// specific machine and for the tiled-vs-untiled equivalence tests.
func (d *Domain) SetTileLog(log int) {
	if log < 0 {
		log = 0
	}
	d.tileLog = log
}

// nttCtx is the in-place iterative Cooley-Tukey transform driven by the
// given per-stage twiddle tables, in two phases. Phase 1 fuses the first
// tileLog stages: each cache-sized tile of consecutive elements is carried
// through all of them while resident, one memory pass instead of one per
// stage (tiles are independent, so they parallelize). Phase 2 runs the
// remaining wide stages one at a time: early ones parallelize across
// blocks, late ones (few wide blocks) across the butterflies inside each
// block. Cancellation is checked at stage boundaries and inside
// ChunksCtx's dispenser; because field arithmetic is exact, the result is
// identical for every thread count and tile size.
func (d *Domain) nttCtx(ctx context.Context, a []ff.Element, tw [][]ff.Element, threads int) error {
	fr := d.Fr
	bitReverse(a, d.LogN)

	par := threads > 1 && d.N >= parallelNTTMin
	tl := d.tileLog
	if tl > d.LogN {
		tl = d.LogN
	}
	// Keep at least one tile per thread: shrinking the tile costs little
	// (the smaller tile still fits), starving threads costs the whole
	// parallel speedup.
	if par {
		for tl > 0 && d.N>>uint(tl) < threads {
			tl--
		}
	}

	if tl > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		tileSize := 1 << uint(tl)
		tiles := d.N >> uint(tl)
		doTiles := func(lo, hi int) {
			for ti := lo; ti < hi; ti++ {
				base := ti * tileSize
				for s := 0; s < tl; s++ {
					half := 1 << uint(s)
					length := half << 1
					stage := tw[s]
					for start := base; start < base+tileSize; start += length {
						for k := 0; k < half; k++ {
							var t ff.Element
							fr.Mul(&t, &a[start+k+half], &stage[k])
							fr.Sub(&a[start+k+half], &a[start+k], &t)
							fr.Add(&a[start+k], &a[start+k], &t)
						}
					}
				}
			}
		}
		if !par {
			doTiles(0, tiles)
		} else if err := parallel.ChunksCtx(ctx, tiles, threads, doTiles); err != nil {
			return err
		}
	}

	for s := tl; s < d.LogN; s++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		half := 1 << uint(s)
		length := half << 1
		stage := tw[s]
		blocks := d.N >> uint(s+1)
		doBlocks := func(bLo, bHi int) {
			for b := bLo; b < bHi; b++ {
				start := b * length
				for k := 0; k < half; k++ {
					var t ff.Element
					fr.Mul(&t, &a[start+k+half], &stage[k])
					fr.Sub(&a[start+k+half], &a[start+k], &t)
					fr.Add(&a[start+k], &a[start+k], &t)
				}
			}
		}
		if !par {
			doBlocks(0, blocks)
			continue
		}
		if blocks >= threads {
			if err := parallel.ChunksCtx(ctx, blocks, threads, doBlocks); err != nil {
				return err
			}
			continue
		}
		for b := 0; b < blocks; b++ {
			start := b * length
			err := parallel.ChunksCtx(ctx, half, threads, func(lo, hi int) {
				for k := lo; k < hi; k++ {
					var t ff.Element
					fr.Mul(&t, &a[start+k+half], &stage[k])
					fr.Sub(&a[start+k+half], &a[start+k], &t)
					fr.Add(&a[start+k], &a[start+k], &t)
				}
			})
			if err != nil {
				return err
			}
		}
	}
	return ctx.Err()
}

// scaleCtx multiplies a[i] *= scale[i] element-wise, parallelized when
// asked.
func (d *Domain) scaleCtx(ctx context.Context, a, scale []ff.Element, threads int) error {
	fr := d.Fr
	if threads <= 1 || d.N < parallelNTTMin {
		for i := range a {
			fr.Mul(&a[i], &a[i], &scale[i])
		}
		return ctx.Err()
	}
	return parallel.ChunksCtx(ctx, len(a), threads, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fr.Mul(&a[i], &a[i], &scale[i])
		}
	})
}

// NTT transforms coefficients to evaluations over the domain, in place.
// len(a) must equal the domain size.
func (d *Domain) NTT(a []ff.Element) {
	_ = d.NTTCtx(context.Background(), a, 1)
}

// NTTCtx is NTT with cancellation and an explicit thread budget.
func (d *Domain) NTTCtx(ctx context.Context, a []ff.Element, threads int) error {
	d.checkLen(a)
	d.initTables()
	return d.nttCtx(ctx, a, d.twiddles, threads)
}

// INTT transforms evaluations back to coefficients, in place.
func (d *Domain) INTT(a []ff.Element) {
	_ = d.INTTCtx(context.Background(), a, 1)
}

// INTTCtx is INTT with cancellation and an explicit thread budget.
func (d *Domain) INTTCtx(ctx context.Context, a []ff.Element, threads int) error {
	d.checkLen(a)
	d.initTables()
	if err := d.nttCtx(ctx, a, d.twiddlesInv, threads); err != nil {
		return err
	}
	fr := d.Fr
	if threads <= 1 || d.N < parallelNTTMin {
		for i := range a {
			fr.Mul(&a[i], &a[i], &d.NInv)
		}
		return ctx.Err()
	}
	return parallel.ChunksCtx(ctx, len(a), threads, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fr.Mul(&a[i], &a[i], &d.NInv)
		}
	})
}

// CosetNTT evaluates the coefficient vector over the coset g·H, in place.
func (d *Domain) CosetNTT(a []ff.Element) {
	_ = d.CosetNTTCtx(context.Background(), a, 1)
}

// CosetNTTCtx is CosetNTT with cancellation and an explicit thread budget.
func (d *Domain) CosetNTTCtx(ctx context.Context, a []ff.Element, threads int) error {
	d.checkLen(a)
	d.initTables()
	if err := d.scaleCtx(ctx, a, d.cosetScale, threads); err != nil {
		return err
	}
	return d.nttCtx(ctx, a, d.twiddles, threads)
}

// CosetINTT interpolates coset evaluations back to coefficients, in place.
func (d *Domain) CosetINTT(a []ff.Element) {
	_ = d.CosetINTTCtx(context.Background(), a, 1)
}

// CosetINTTCtx is CosetINTT with cancellation and an explicit thread
// budget. The N⁻¹ factor is folded into the coset unwind vector, so the
// whole post-pass is one multiply per element.
func (d *Domain) CosetINTTCtx(ctx context.Context, a []ff.Element, threads int) error {
	d.checkLen(a)
	d.initTables()
	if err := d.nttCtx(ctx, a, d.twiddlesInv, threads); err != nil {
		return err
	}
	return d.scaleCtx(ctx, a, d.cosetUnwind, threads)
}

func (d *Domain) checkLen(a []ff.Element) {
	if len(a) != d.N {
		panic(fmt.Sprintf("poly: slice length %d != domain size %d", len(a), d.N))
	}
}

// ZEval evaluates the vanishing polynomial Z(x) = x^N − 1 at x.
func (d *Domain) ZEval(x *ff.Element) ff.Element {
	fr := d.Fr
	var acc ff.Element
	fr.Set(&acc, x)
	for i := 0; i < d.LogN; i++ {
		fr.Square(&acc, &acc)
	}
	var one ff.Element
	fr.One(&one)
	fr.Sub(&acc, &acc, &one)
	return acc
}

// RootPower returns ω^k.
func (d *Domain) RootPower(k int) ff.Element {
	var out ff.Element
	d.Fr.ExpUint64(&out, &d.Root, uint64(k%d.N))
	return out
}

// ---------- dense polynomial helpers ----------

// Eval evaluates the coefficient vector p (low degree first) at x by
// Horner's rule.
func Eval(fr *ff.Field, p []ff.Element, x *ff.Element) ff.Element {
	var acc ff.Element
	fr.Zero(&acc)
	for i := len(p) - 1; i >= 0; i-- {
		fr.Mul(&acc, &acc, x)
		fr.Add(&acc, &acc, &p[i])
	}
	return acc
}

// Add returns p + q (coefficient-wise, result has max length).
func Add(fr *ff.Field, p, q []ff.Element) []ff.Element {
	n := len(p)
	if len(q) > n {
		n = len(q)
	}
	out := make([]ff.Element, n)
	copy(out, p)
	for i := range q {
		fr.Add(&out[i], &out[i], &q[i])
	}
	return out
}

// Sub returns p − q.
func Sub(fr *ff.Field, p, q []ff.Element) []ff.Element {
	n := len(p)
	if len(q) > n {
		n = len(q)
	}
	out := make([]ff.Element, n)
	copy(out, p)
	for i := range q {
		fr.Sub(&out[i], &out[i], &q[i])
	}
	return out
}

// MulNaive returns p·q by schoolbook convolution — the O(n²) baseline used
// in tests and the NTT ablation benchmark.
func MulNaive(fr *ff.Field, p, q []ff.Element) []ff.Element {
	if len(p) == 0 || len(q) == 0 {
		return nil
	}
	out := make([]ff.Element, len(p)+len(q)-1)
	var t ff.Element
	for i := range p {
		if fr.IsZero(&p[i]) {
			continue
		}
		for j := range q {
			fr.Mul(&t, &p[i], &q[j])
			fr.Add(&out[i+j], &out[i+j], &t)
		}
	}
	return out
}

// Mul returns p·q using NTT-based convolution.
func Mul(fr *ff.Field, p, q []ff.Element) ([]ff.Element, error) {
	if len(p) == 0 || len(q) == 0 {
		return nil, nil
	}
	outLen := len(p) + len(q) - 1
	d, err := NewDomain(fr, outLen)
	if err != nil {
		return nil, err
	}
	pa := make([]ff.Element, d.N)
	qa := make([]ff.Element, d.N)
	copy(pa, p)
	copy(qa, q)
	d.NTT(pa)
	d.NTT(qa)
	for i := range pa {
		fr.Mul(&pa[i], &pa[i], &qa[i])
	}
	d.INTT(pa)
	return pa[:outLen], nil
}
