package poly

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"zkperf/internal/ff"
)

// refNTT is the pre-table reference transform: on-the-fly twiddle chain
// (w *= wLen per butterfly), strictly serial. The table-driven kernel
// must match it bit for bit at every size and thread count.
func refNTT(d *Domain, a []ff.Element, root *ff.Element) {
	fr := d.Fr
	bitReverse(a, d.LogN)
	for length := 2; length <= d.N; length <<= 1 {
		var wLen ff.Element
		fr.Set(&wLen, root)
		for l := length; l < d.N; l <<= 1 {
			fr.Square(&wLen, &wLen)
		}
		half := length >> 1
		for start := 0; start < d.N; start += length {
			var w ff.Element
			fr.One(&w)
			for k := 0; k < half; k++ {
				var t ff.Element
				fr.Mul(&t, &a[start+k+half], &w)
				fr.Sub(&a[start+k+half], &a[start+k], &t)
				fr.Add(&a[start+k], &a[start+k], &t)
				fr.Mul(&w, &w, &wLen)
			}
		}
	}
}

func refForward(d *Domain, a []ff.Element) { refNTT(d, a, &d.Root) }
func refInverse(d *Domain, a []ff.Element) {
	fr := d.Fr
	refNTT(d, a, &d.RootInv)
	for i := range a {
		fr.Mul(&a[i], &a[i], &d.NInv)
	}
}
func refCosetForward(d *Domain, a []ff.Element) {
	fr := d.Fr
	var pow ff.Element
	fr.One(&pow)
	for i := range a {
		fr.Mul(&a[i], &a[i], &pow)
		fr.Mul(&pow, &pow, &d.CosetGen)
	}
	refNTT(d, a, &d.Root)
}
func refCosetInverse(d *Domain, a []ff.Element) {
	fr := d.Fr
	refNTT(d, a, &d.RootInv)
	var pow ff.Element
	fr.One(&pow)
	for i := range a {
		fr.Mul(&a[i], &a[i], &d.NInv)
		fr.Mul(&a[i], &a[i], &pow)
		fr.Mul(&pow, &pow, &d.CosetGenInv)
	}
}

// TestNTTMatchesReference cross-checks all four table-driven transforms
// against the serial on-the-fly reference across sizes × fields × thread
// counts. Field arithmetic is exact, so equality must be exact too.
func TestNTTMatchesReference(t *testing.T) {
	type variant struct {
		name string
		tab  func(d *Domain, ctx context.Context, a []ff.Element, threads int) error
		ref  func(d *Domain, a []ff.Element)
	}
	variants := []variant{
		{"ntt", (*Domain).NTTCtx, refForward},
		{"intt", (*Domain).INTTCtx, refInverse},
		{"coset-ntt", (*Domain).CosetNTTCtx, refCosetForward},
		{"coset-intt", (*Domain).CosetINTTCtx, refCosetInverse},
	}
	threadCounts := []int{1, 4, runtime.NumCPU()}
	for _, fr := range fields() {
		for logN := 0; logN <= 12; logN += 3 {
			n := 1 << uint(logN)
			d, err := NewDomain(fr, n)
			if err != nil {
				t.Fatal(err)
			}
			rng := ff.NewRNG(uint64(100 + logN))
			input := make([]ff.Element, n)
			for i := range input {
				fr.Random(&input[i], rng)
			}
			for _, v := range variants {
				want := make([]ff.Element, n)
				copy(want, input)
				v.ref(d, want)
				for _, th := range threadCounts {
					t.Run(fmt.Sprintf("%s/%s/n=%d/threads=%d", fr.Name, v.name, n, th), func(t *testing.T) {
						got := make([]ff.Element, n)
						copy(got, input)
						if err := v.tab(d, context.Background(), got, th); err != nil {
							t.Fatal(err)
						}
						for i := range got {
							if !fr.Equal(&got[i], &want[i]) {
								t.Fatalf("differs from serial reference at index %d", i)
							}
						}
					})
				}
			}
		}
	}
}

// TestNTTCtxCancelled: a cancelled context stops the transform and
// surfaces the error from every Ctx variant.
func TestNTTCtxCancelled(t *testing.T) {
	fr := ff.NewBN254Fr()
	d, err := NewDomain(fr, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	a := make([]ff.Element, d.N)
	rng := ff.NewRNG(7)
	for i := range a {
		fr.Random(&a[i], rng)
	}
	for _, tc := range []struct {
		name string
		fn   func(context.Context, []ff.Element, int) error
	}{
		{"ntt", d.NTTCtx},
		{"intt", d.INTTCtx},
		{"coset-ntt", d.CosetNTTCtx},
		{"coset-intt", d.CosetINTTCtx},
	} {
		for _, th := range []int{1, 4} {
			buf := make([]ff.Element, d.N)
			copy(buf, a)
			if err := tc.fn(ctx, buf, th); err == nil {
				t.Errorf("%s threads=%d: cancelled ctx returned nil error", tc.name, th)
			}
		}
	}
}

// TestNTTConcurrentSharedDomain: one Domain serving transforms from many
// goroutines at once (the plonk proving key shares a Domain across
// concurrent proves) — exercises the lazy table init under race.
func TestNTTConcurrentSharedDomain(t *testing.T) {
	fr := ff.NewBN254Fr()
	d, err := NewDomain(fr, 1<<8)
	if err != nil {
		t.Fatal(err)
	}
	rng := ff.NewRNG(8)
	input := make([]ff.Element, d.N)
	for i := range input {
		fr.Random(&input[i], rng)
	}
	want := make([]ff.Element, d.N)
	copy(want, input)
	refForward(d, want)

	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			buf := make([]ff.Element, d.N)
			copy(buf, input)
			if err := d.NTTCtx(context.Background(), buf, 2); err != nil {
				done <- err
				return
			}
			for i := range buf {
				if !fr.Equal(&buf[i], &want[i]) {
					done <- fmt.Errorf("concurrent NTT diverged at %d", i)
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
