package poly

import (
	"testing"
	"testing/quick"

	"zkperf/internal/ff"
)

// Property-based tests on the transform invariants the prover relies on.

// TestQuickNTTLinearity: NTT(a + b) == NTT(a) + NTT(b).
func TestQuickNTTLinearity(t *testing.T) {
	fr := ff.NewBN254Fr()
	d, _ := NewDomain(fr, 32)
	prop := func(seed uint64) bool {
		rng := ff.NewRNG(seed)
		a := make([]ff.Element, d.N)
		b := make([]ff.Element, d.N)
		sum := make([]ff.Element, d.N)
		for i := range a {
			fr.Random(&a[i], rng)
			fr.Random(&b[i], rng)
			fr.Add(&sum[i], &a[i], &b[i])
		}
		d.NTT(a)
		d.NTT(b)
		d.NTT(sum)
		var want ff.Element
		for i := range sum {
			fr.Add(&want, &a[i], &b[i])
			if !fr.Equal(&sum[i], &want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestQuickConvolutionTheorem: INTT(NTT(a) ⊙ NTT(b)) == a * b for
// polynomials whose product fits the domain.
func TestQuickConvolutionTheorem(t *testing.T) {
	fr := ff.NewBN254Fr()
	d, _ := NewDomain(fr, 32)
	prop := func(seed uint64) bool {
		rng := ff.NewRNG(seed)
		half := d.N / 2
		a := make([]ff.Element, d.N)
		b := make([]ff.Element, d.N)
		for i := 0; i < half; i++ {
			fr.Random(&a[i], rng)
			fr.Random(&b[i], rng)
		}
		want := MulNaive(fr, a[:half], b[:half])
		d.NTT(a)
		d.NTT(b)
		for i := range a {
			fr.Mul(&a[i], &a[i], &b[i])
		}
		d.INTT(a)
		for i := range want {
			if !fr.Equal(&a[i], &want[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestQuickEvalHomomorphism: (p+q)(x) == p(x) + q(x) at random points.
func TestQuickEvalHomomorphism(t *testing.T) {
	fr := ff.NewBN254Fr()
	prop := func(seed uint64, n uint8) bool {
		rng := ff.NewRNG(seed)
		size := int(n%16) + 1
		p := make([]ff.Element, size)
		q := make([]ff.Element, size)
		for i := range p {
			fr.Random(&p[i], rng)
			fr.Random(&q[i], rng)
		}
		var x ff.Element
		fr.Random(&x, rng)
		sum := Add(fr, p, q)
		var want ff.Element
		pe, qe := Eval(fr, p, &x), Eval(fr, q, &x)
		fr.Add(&want, &pe, &qe)
		got := Eval(fr, sum, &x)
		return fr.Equal(&got, &want)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
