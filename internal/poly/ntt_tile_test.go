package poly

import (
	"context"
	"fmt"
	"testing"

	"zkperf/internal/cachesim"
	"zkperf/internal/cpumodel"
	"zkperf/internal/ff"
	"zkperf/internal/trace"
)

// TestNTTTiledMatchesUntiled: the cache-blocked traversal is a pure
// reordering — every tile size and thread count produces coefficients
// identical to the untiled transform.
func TestNTTTiledMatchesUntiled(t *testing.T) {
	fr := ff.NewBN254Fr()
	rng := ff.NewRNG(211)
	for _, logN := range []int{6, 10, 13} {
		n := 1 << logN
		d, err := NewDomain(fr, n)
		if err != nil {
			t.Fatal(err)
		}
		orig := make([]ff.Element, n)
		for i := range orig {
			fr.Random(&orig[i], rng)
		}

		want := append([]ff.Element(nil), orig...)
		d.SetTileLog(0)
		d.NTT(want)

		for _, tl := range []int{1, 4, 8, logN, logN + 3} {
			for _, threads := range []int{1, 4} {
				got := append([]ff.Element(nil), orig...)
				d.SetTileLog(tl)
				if err := d.NTTCtx(context.Background(), got, threads); err != nil {
					t.Fatal(err)
				}
				for i := range got {
					if !fr.Equal(&got[i], &want[i]) {
						t.Fatalf("n=2^%d tile=2^%d threads=%d: element %d differs from untiled NTT",
							logN, tl, threads, i)
					}
				}
				// Round trip through the tiled inverse too.
				if err := d.INTTCtx(context.Background(), got, threads); err != nil {
					t.Fatal(err)
				}
				for i := range got {
					if !fr.Equal(&got[i], &orig[i]) {
						t.Fatalf("n=2^%d tile=2^%d threads=%d: INTT(NTT(a)) != a at %d",
							logN, tl, threads, i)
					}
				}
			}
		}
	}
}

// TestNTTTileLogSizing: the tile must actually fit — tile data plus
// twiddles within half of L2 — and grow with the modeled cache.
func TestNTTTileLogSizing(t *testing.T) {
	var prev int
	var prevL2 int
	for i, cpu := range cpumodel.All() {
		b := NTTTileLog(cpu)
		if b < 1 {
			t.Fatalf("%s: tile log %d — tiling disabled on a modeled CPU", cpu.Name, b)
		}
		footprint := (int64(2) << uint(b)) * nttElemBytes
		if footprint > int64(cpu.L2.SizeBytes/2) {
			t.Fatalf("%s: tile footprint %d bytes exceeds half L2 (%d)",
				cpu.Name, footprint, cpu.L2.SizeBytes/2)
		}
		if i > 0 && cpu.L2.SizeBytes >= prevL2 && b < prev {
			t.Fatalf("%s: larger L2 produced a smaller tile (%d < %d)", cpu.Name, b, prev)
		}
		prev, prevL2 = b, cpu.L2.SizeBytes
	}
}

// TestNTTTilingReducesSimulatedMisses replays the two traversal orders
// through the cache simulator that motivated the tile size: the untiled
// transform streams the whole array once per fused stage, while the tiled
// one streams each cache-resident tile once and re-reads it from L2. The
// simulated L2 misses of the tiled early stages must come in well under
// the untiled ones.
func TestNTTTilingReducesSimulatedMisses(t *testing.T) {
	cpu := cpumodel.NewI5_11400()
	tl := NTTTileLog(cpu)
	logN := tl + 4 // big enough that the whole array blows past L2
	n := int64(1) << uint(logN)
	tileElems := int64(1) << uint(tl)
	tiles := n / tileElems

	// Untiled: tl separate stages, each one full sequential pass.
	untiled := cachesim.New(cpu)
	for s := 0; s < tl; s++ {
		untiled.Replay(trace.Access{
			Kind: trace.Sequential, Region: "ntt.a",
			RegionBytes: n * nttElemBytes, ElemSize: int(nttElemBytes),
			Touches: n,
		})
	}
	untiledMisses := untiled.L2.Misses

	// Tiled: each tile is touched tl times back to back while resident.
	tiled := cachesim.New(cpu)
	for ti := int64(0); ti < tiles; ti++ {
		tiled.Replay(trace.Access{
			Kind: trace.Sequential, Region: fmt.Sprintf("ntt.tile.%d", ti),
			RegionBytes: tileElems * nttElemBytes, ElemSize: int(nttElemBytes),
			Touches: int64(tl) * tileElems,
		})
	}
	tiledMisses := tiled.L2.Misses

	if tiledMisses*2 >= untiledMisses {
		t.Fatalf("tiling did not cut simulated L2 misses: tiled %d vs untiled %d",
			tiledMisses, untiledMisses)
	}
}
