// Package report renders the analysis results as aligned text tables and
// simple ASCII charts, mirroring the tables and figures of the paper.
package report

import (
	"fmt"
	"math"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Headers)
	total := len(t.Headers) - 1
	for _, w := range widths {
		total += w + 1
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	return sb.String()
}

// Series is one named line of a chart.
type Series struct {
	Name   string
	Values []float64
}

// Chart renders a multi-series ASCII line chart plus the underlying
// numbers, standing in for the paper's figures.
type Chart struct {
	Title  string
	XLabel string
	XTicks []string
	Series []Series
	Height int // plot rows; 0 uses a default
}

// String renders the chart.
func (c *Chart) String() string {
	var sb strings.Builder
	if c.Title != "" {
		sb.WriteString(c.Title)
		sb.WriteByte('\n')
	}
	height := c.Height
	if height <= 0 {
		height = 12
	}
	// Find the value range.
	lo, hi := math.Inf(1), math.Inf(-1)
	maxLen := 0
	for _, s := range c.Series {
		for _, v := range s.Values {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if len(s.Values) > maxLen {
			maxLen = len(s.Values)
		}
	}
	if maxLen == 0 || math.IsInf(lo, 1) {
		sb.WriteString("(no data)\n")
		return sb.String()
	}
	if hi == lo {
		hi = lo + 1
	}
	marks := []byte("*o+x#@%&")
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", maxLen*4))
	}
	for si, s := range c.Series {
		mark := marks[si%len(marks)]
		for xi, v := range s.Values {
			row := int((hi - v) / (hi - lo) * float64(height-1))
			col := xi * 4
			if row >= 0 && row < height && col < len(grid[row]) {
				grid[row][col] = mark
			}
		}
	}
	for r, rowBytes := range grid {
		val := hi - (hi-lo)*float64(r)/float64(height-1)
		fmt.Fprintf(&sb, "%8.2f |%s\n", val, string(rowBytes))
	}
	sb.WriteString("         +" + strings.Repeat("-", maxLen*4) + "\n")
	if len(c.XTicks) > 0 {
		sb.WriteString("          ")
		for _, tick := range c.XTicks {
			fmt.Fprintf(&sb, "%-4s", tick)
		}
		sb.WriteByte('\n')
	}
	if c.XLabel != "" {
		fmt.Fprintf(&sb, "          x: %s\n", c.XLabel)
	}
	// Legend and values.
	for si, s := range c.Series {
		fmt.Fprintf(&sb, "  %c %s:", marks[si%len(marks)], s.Name)
		for _, v := range s.Values {
			fmt.Fprintf(&sb, " %.2f", v)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// F formats a float compactly for table cells.
func F(v float64) string { return fmt.Sprintf("%.2f", v) }

// F1 formats a float with one decimal.
func F1(v float64) string { return fmt.Sprintf("%.1f", v) }

// I formats an integer for table cells.
func I(v int64) string { return fmt.Sprintf("%d", v) }

// SI formats a value with an SI suffix (K/M/G) for compact load/store
// counts.
func SI(v int64) string {
	f := float64(v)
	switch {
	case f >= 1e9:
		return fmt.Sprintf("%.2fG", f/1e9)
	case f >= 1e6:
		return fmt.Sprintf("%.2fM", f/1e6)
	case f >= 1e3:
		return fmt.Sprintf("%.2fK", f/1e3)
	}
	return fmt.Sprintf("%d", v)
}
