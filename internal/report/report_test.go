package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		Title:   "T",
		Headers: []string{"A", "Blongheader"},
	}
	tbl.AddRow("x", "1")
	tbl.AddRow("yy", "22")
	out := tbl.String()
	if !strings.Contains(out, "T\n") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "Blongheader") {
		t.Error("missing header")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("line count = %d: %q", len(lines), out)
	}
	// Columns align: both rows start their second column at the same
	// offset.
	r1 := strings.Index(lines[3], "1")
	r2 := strings.Index(lines[4], "22")
	if r1 != r2 {
		t.Errorf("columns misaligned: %d vs %d", r1, r2)
	}
}

func TestChartRendering(t *testing.T) {
	c := &Chart{
		Title:  "speedup",
		XLabel: "threads",
		XTicks: []string{"1", "2", "4"},
		Series: []Series{
			{Name: "a", Values: []float64{1, 2, 4}},
			{Name: "b", Values: []float64{1, 1.5, 2}},
		},
	}
	out := c.String()
	for _, want := range []string{"speedup", "threads", "a:", "b:", "4.00", "1.50"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart output missing %q", want)
		}
	}
}

func TestChartEmpty(t *testing.T) {
	c := &Chart{Title: "empty"}
	if !strings.Contains(c.String(), "(no data)") {
		t.Error("empty chart should say so")
	}
}

func TestChartFlatSeries(t *testing.T) {
	// Constant values (hi == lo) must not divide by zero.
	c := &Chart{Series: []Series{{Name: "flat", Values: []float64{3, 3, 3}}}}
	out := c.String()
	if !strings.Contains(out, "flat") {
		t.Error("flat series missing from output")
	}
}

func TestFormatters(t *testing.T) {
	if F(1.234) != "1.23" || F1(1.26) != "1.3" || I(42) != "42" {
		t.Error("basic formatters wrong")
	}
	cases := map[int64]string{
		5:             "5",
		1500:          "1.50K",
		2_500_000:     "2.50M",
		3_000_000_000: "3.00G",
	}
	for v, want := range cases {
		if got := SI(v); got != want {
			t.Errorf("SI(%d) = %q, want %q", v, got, want)
		}
	}
}
