package groth16

import (
	"zkperf/internal/curve"
	"zkperf/internal/r1cs"
	"zkperf/internal/trace"
)

// Access-pattern emission for the traced stages. Base sizes use the native
// in-memory representations (32-byte scalars, 64/128-byte affine points),
// expanded by jsBoxFactor: the profiled snarkjs stack stores field elements
// and points as JavaScript objects/typed-array views whose heap footprint
// is several times the raw data — the main reason its working sets
// overflow even the i9's 36 MiB LLC at large constraint counts.

// jsBoxFactor is the heap-expansion ratio of the JS/WASM representation
// over the native one (V8 boxed objects, GC headers, views).
const jsBoxFactor = 6

// boxed expands an access pattern to the JS heap representation.
func boxed(a trace.Access) trace.Access {
	a.RegionBytes *= jsBoxFactor
	a.ElemSize *= jsBoxFactor
	return a
}

// recFixedBase records the memory behaviour of one fixed-base MulBatch:
// a sequential scan of the scalars, per-scalar random lookups into the
// precomputed signed-window table, and a sequential write of the results.
// Geometry mirrors curve.FixedBaseTable: (bits+c)/c windows of 2^{c−1}
// entries each (negative digits reuse positive entries via negation).
func (e *Engine) recFixedBase(name string, n int, g2 bool) {
	rec := e.Rec
	if rec == nil || n == 0 {
		return
	}
	coordBytes := int64(e.Curve.Fp.ByteLen())
	pointBytes := 2 * coordBytes
	c := curve.FixedBaseWindowBits
	tableRows := (e.Curve.Fr.Bits() + c) / c
	rowEntries := int64(1) << uint(c-1)
	tableBytes := int64(tableRows) * rowEntries * pointBytes
	if g2 {
		tableBytes *= 2
		pointBytes *= 2
	}
	rec.Access(boxed(trace.Access{Kind: trace.Sequential, Region: "setup.scalars." + name,
		RegionBytes: int64(n) * 32, ElemSize: 32, Touches: int64(n)}))
	tblName := "fbtable.g1"
	if g2 {
		tblName = "fbtable.g2"
	}
	rec.Access(boxed(trace.Access{Kind: trace.Random, Region: tblName,
		RegionBytes: tableBytes, ElemSize: int(pointBytes), Touches: int64(n * tableRows)}))
	rec.Access(boxed(trace.Access{Kind: trace.Sequential, Region: "pk." + name,
		RegionBytes: int64(n) * pointBytes, ElemSize: int(pointBytes), Touches: int64(n), Write: true}))
}

// recMSM records the memory behaviour of one Pippenger MSM: streaming
// reads of points and scalars, random bucket updates, and the window
// reduction. At GLV sizes the endomorphism path doubles the streamed
// point set (P and φ(P)) while the window passes run over the half-width
// subscalars — the op-count model follows curve.G1MSMCtx exactly.
func (e *Engine) recMSM(name string, n int, g2 bool) {
	rec := e.Rec
	if rec == nil || n == 0 {
		return
	}
	coordBytes := int64(e.Curve.Fp.ByteLen())
	pointBytes := 2 * coordBytes
	jacBytes := 3 * coordBytes
	if g2 {
		pointBytes *= 2
		jacBytes *= 2
	}
	// Signed-digit windows: one extra window absorbs the final carry and
	// the bucket count halves to 2^{c−1}. The GLV path runs the same core
	// over 2n points with subscalars of GLVBits() ≈ half width.
	points := n
	scalarBits := e.Curve.Fr.Bits()
	if n >= curve.GLVMinPoints {
		points = 2 * n
		scalarBits = e.Curve.GLVBits()
	}
	c := msmWindowForSize(points)
	windows := (scalarBits + c) / c
	buckets := int64(1) << uint(c-1)
	// Every window streams all points and scalars once…
	rec.Access(boxed(trace.Access{Kind: trace.Sequential, Region: "msm.points." + name,
		RegionBytes: int64(points) * pointBytes, ElemSize: int(pointBytes), Touches: int64(points * windows)}))
	rec.Access(boxed(trace.Access{Kind: trace.Sequential, Region: "msm.scalars." + name,
		RegionBytes: int64(points) * 32, ElemSize: 32, Touches: int64(points * windows)}))
	// …and scatters into its bucket array (read-modify-write).
	rec.Access(boxed(trace.Access{Kind: trace.Random, Region: "msm.buckets." + name,
		RegionBytes: buckets * jacBytes, ElemSize: int(jacBytes), Touches: int64(points * windows)}))
	rec.Access(boxed(trace.Access{Kind: trace.Random, Region: "msm.buckets." + name,
		RegionBytes: buckets * jacBytes, ElemSize: int(jacBytes), Touches: int64(points * windows), Write: true}))
	// Window reduction: a sequential sweep over the buckets per window.
	rec.Access(boxed(trace.Access{Kind: trace.Sequential, Region: "msm.buckets." + name,
		RegionBytes: buckets * jacBytes, ElemSize: int(jacBytes), Touches: buckets * int64(windows)}))
}

// msmWindowForSize mirrors the Pippenger window-width heuristic of the
// curve package for footprint accounting.
func msmWindowForSize(n int) int {
	switch {
	case n < 8:
		return 2
	case n < 32:
		return 3
	case n < 128:
		return 5
	case n < 1024:
		return 7
	case n < 8192:
		return 9
	case n < 1<<17:
		return 11
	case n < 1<<21:
		return 13
	default:
		return 15
	}
}

// recNTT records the strided butterfly passes of the quotient computation:
// nine transforms (3 INTT, 3 coset NTT, 1 coset INTT plus scaling passes)
// over the three evaluation vectors.
func (e *Engine) recQuotient(sys *r1cs.System, domainN, logN int) {
	rec := e.Rec
	if rec == nil {
		return
	}
	st := sys.Stats()
	nv := sys.NumVariables()
	// LC evaluation: sparse matrix stream + random witness gathers.
	rec.Access(boxed(trace.Access{Kind: trace.Sequential, Region: "r1cs.terms",
		RegionBytes: int64(st.NonZeroTerms) * 40, ElemSize: 40, Touches: int64(st.NonZeroTerms)}))
	rec.Access(boxed(trace.Access{Kind: trace.Random, Region: "witness",
		RegionBytes: int64(nv) * 32, ElemSize: 32, Touches: int64(st.NonZeroTerms)}))
	rec.Access(boxed(trace.Access{Kind: trace.Sequential, Region: "prove.abc",
		RegionBytes: int64(3*domainN) * 32, ElemSize: 32, Touches: int64(3 * domainN), Write: true}))
	// 7 transforms × logN butterfly passes, each touching N elements with
	// power-of-two strides (reads and writes).
	passes := int64(7 * logN)
	rec.Access(boxed(trace.Access{Kind: trace.Strided, Region: "prove.abc",
		RegionBytes: int64(3*domainN) * 32, ElemSize: 32, Stride: 64,
		Touches: passes * int64(domainN)}))
	rec.Access(boxed(trace.Access{Kind: trace.Strided, Region: "prove.abc",
		RegionBytes: int64(3*domainN) * 32, ElemSize: 32, Stride: 64,
		Touches: passes * int64(domainN), Write: true}))
	// Pointwise quotient: one sequential fused pass.
	rec.Access(boxed(trace.Access{Kind: trace.Sequential, Region: "prove.abc",
		RegionBytes: int64(3*domainN) * 32, ElemSize: 32, Touches: int64(3 * domainN)}))
}

// recPairing records the working set of the verifying stage: the
// Miller-loop state and line evaluations (small, cache-resident) and the
// final-exponentiation accumulator.
func (e *Engine) recPairing(pairs int) {
	rec := e.Rec
	if rec == nil {
		return
	}
	fpBytes := int64(e.Curve.Fp.ByteLen())
	e12 := 12 * fpBytes
	loopLen := int64(e.Curve.LoopCount.BitLen())
	// Per pair: the loop touches the accumulator, the running point and
	// the line value every iteration.
	rec.Access(boxed(trace.Access{Kind: trace.Sequential, Region: "pairing.state",
		RegionBytes: 8 * e12, ElemSize: int(e12), Touches: int64(pairs) * loopLen * 6}))
	rec.Access(boxed(trace.Access{Kind: trace.Sequential, Region: "pairing.state",
		RegionBytes: 8 * e12, ElemSize: int(e12), Touches: int64(pairs) * loopLen * 3, Write: true}))
	// Final exponentiation: ~hardExp.BitLen() squarings over the
	// accumulator.
	rec.Access(boxed(trace.Access{Kind: trace.Sequential, Region: "pairing.state",
		RegionBytes: 8 * e12, ElemSize: int(e12), Touches: 1300 * 4}))
}
