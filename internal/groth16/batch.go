package groth16

import (
	"context"
	crand "crypto/rand"
	"errors"
	"fmt"
	"math/big"

	"zkperf/internal/curve"
	"zkperf/internal/ff"
	"zkperf/internal/telemetry"
)

// Batched verification folds N proofs against one verifying key into a
// single multi-pairing check. With fresh random scalars r_i the check
//
//	Π e(r_i·A_i, B_i) · e(−(Σr_i)·α, β) · e(−Σr_i·IC_i, γ) · e(−Σr_i·C_i, δ) == 1
//
// holds iff every per-proof equation holds, except with probability
// ≈ 2^-batchScalarBits per invalid proof (an adversary cannot cancel
// terms across proofs without predicting the r_i). The IC fold uses
//	Σ_i r_i·IC_i = Σ_j (Σ_i r_i·pub_{i,j})·IC_j
// so the public-input work stays one MSM over vk.IC regardless of N.
// Cost: N+3 Miller loops and ONE shared final exponentiation, versus
// 4N Miller loops and N final exponentiations verifying one at a time.

// batchScalarBits sizes the random fold scalars. 128 bits keeps the
// per-proof cheat probability negligible (2^-128) while halving the
// scalar-multiplication cost versus full-width field elements.
const batchScalarBits = 128

// batchScalars draws n nonzero fold scalars from the OS CSPRNG. The
// deterministic ff.RNG used elsewhere for reproducible benchmarks is
// explicitly not cryptographic; predictable scalars would let a prover
// craft proof pairs whose invalid terms cancel in the fold.
func batchScalars(fr *ff.Field, n int) ([]ff.Element, error) {
	out := make([]ff.Element, n)
	buf := make([]byte, batchScalarBits/8)
	for i := range out {
		for {
			if _, err := crand.Read(buf); err != nil {
				return nil, fmt.Errorf("groth16: drawing batch scalars: %w", err)
			}
			fr.SetBigInt(&out[i], new(big.Int).SetBytes(buf))
			if !fr.IsZero(&out[i]) {
				break
			}
		}
	}
	return out, nil
}

// VerifyBatch checks many proofs against one verifying key with a single
// folded pairing check. It returns one error slot per proof, index-aligned
// with proofs: nil for valid, ErrInvalidProof (or a shape error) otherwise.
// The second return is a batch-level infrastructure error (cancellation,
// CSPRNG failure); when it is non-nil the per-proof slots are meaningless.
func (e *Engine) VerifyBatch(vk *VerifyingKey, proofs []*Proof, publics [][]ff.Element) ([]error, error) {
	return e.VerifyBatchCtx(context.Background(), vk, proofs, publics)
}

// VerifyBatchCtx is VerifyBatch with a context: the fold MSMs pick up
// cancellation, and the folded pairing is attributed to the telemetry
// probe as one kernel span of N+3 pairs. When the folded check fails the
// batch is bisected — each failing half is re-folded (reusing the same
// scalars, which is sound: any subset fold is itself a random linear
// combination) — so invalid proofs are attributed to their exact index
// at O(log N) extra folds per invalid proof.
func (e *Engine) VerifyBatchCtx(ctx context.Context, vk *VerifyingKey, proofs []*Proof, publics [][]ff.Element) ([]error, error) {
	if len(proofs) != len(publics) {
		return nil, fmt.Errorf("groth16: %d proofs but %d public witnesses", len(proofs), len(publics))
	}
	results := make([]error, len(proofs))
	if len(proofs) == 0 {
		return results, nil
	}
	// Shape failures are attributed immediately and excluded from the fold
	// so one malformed request cannot mask the rest of the batch.
	live := make([]int, 0, len(proofs))
	for i := range proofs {
		switch {
		case proofs[i] == nil:
			results[i] = fmt.Errorf("groth16: nil proof: %w", ErrInvalidProof)
		case len(publics[i]) != len(vk.IC):
			results[i] = fmt.Errorf("groth16: public witness length %d != %d: %w",
				len(publics[i]), len(vk.IC), ErrInvalidProof)
		default:
			live = append(live, i)
		}
	}
	if len(live) == 0 {
		return results, nil
	}
	if len(live) == 1 {
		// A batch of one folds to the plain check; skip the scalar setup.
		i := live[0]
		err := e.VerifyCtx(ctx, vk, proofs[i], publics[i])
		if err != nil && !errors.Is(err, ErrInvalidProof) {
			return nil, err
		}
		results[i] = err
		return results, nil
	}
	scalars, err := batchScalars(e.Curve.Fr, len(proofs))
	if err != nil {
		return nil, err
	}
	if err := e.verifyBatchScalars(ctx, vk, proofs, publics, scalars, live, results); err != nil {
		return nil, err
	}
	return results, nil
}

// verifyBatchScalars runs the fold-then-bisect protocol over the live
// indices with caller-supplied scalars, writing per-index verdicts into
// results. Split out from VerifyBatchCtx so tests can demonstrate that
// fixed (non-random) scalars admit cancellation forgeries.
func (e *Engine) verifyBatchScalars(ctx context.Context, vk *VerifyingKey, proofs []*Proof, publics [][]ff.Element, scalars []ff.Element, live []int, results []error) error {
	ok, err := e.foldCheck(ctx, vk, proofs, publics, scalars, live)
	if err != nil {
		return err
	}
	if ok {
		return nil // every live slot stays nil
	}
	return e.bisect(ctx, vk, proofs, publics, scalars, live, results)
}

// bisect attributes a failed fold: halve, re-fold each half, recurse into
// failing halves, and settle single proofs with the plain pairing check
// (exact, no soundness slack at the leaf).
func (e *Engine) bisect(ctx context.Context, vk *VerifyingKey, proofs []*Proof, publics [][]ff.Element, scalars []ff.Element, idxs []int, results []error) error {
	if len(idxs) == 1 {
		i := idxs[0]
		err := e.VerifyCtx(ctx, vk, proofs[i], publics[i])
		if err != nil && !errors.Is(err, ErrInvalidProof) {
			return err
		}
		results[i] = err
		return nil
	}
	mid := len(idxs) / 2
	for _, half := range [][]int{idxs[:mid], idxs[mid:]} {
		ok, err := e.foldCheck(ctx, vk, proofs, publics, scalars, half)
		if err != nil {
			return err
		}
		if !ok {
			if err := e.bisect(ctx, vk, proofs, publics, scalars, half, results); err != nil {
				return err
			}
		}
	}
	return nil
}

// foldCheck evaluates the random-linear-combination pairing check over
// one subset of the batch: m+3 Miller loops, one final exponentiation.
func (e *Engine) foldCheck(ctx context.Context, vk *VerifyingKey, proofs []*Proof, publics [][]ff.Element, scalars []ff.Element, idxs []int) (bool, error) {
	c := e.Curve
	fr := c.Fr
	rec := e.Rec
	probe := telemetry.ProbeFromContext(ctx)
	defer e.attachCounters()()
	m := len(idxs)

	// Scalar side: Σr_i, the combined IC scalars, and the C-fold scalars.
	var sumR, t ff.Element
	icScalars := make([]ff.Element, len(vk.IC))
	cScalars := make([]ff.Element, m)
	cPoints := make([]curve.G1Affine, m)
	for k, i := range idxs {
		r := &scalars[i]
		fr.Add(&sumR, &sumR, r)
		for j := range icScalars {
			fr.Mul(&t, r, &publics[i][j])
			fr.Add(&icScalars[j], &icScalars[j], &t)
		}
		cScalars[k] = *r
		cPoints[k] = proofs[i].C
	}

	// Group side: one MSM over vk.IC, one over the C points, and m short
	// scalar multiplications r_i·A_i (the A_i pair with distinct B_i, so
	// they cannot be combined).
	var icAcc, cAcc curve.G1Jac
	var msmErr error
	rec.PhaseRun("msm/batch-IC", 1, func() {
		icAcc, msmErr = c.G1MSMCtx(ctx, vk.IC, icScalars, e.threads(ctx))
	})
	if msmErr != nil {
		return false, msmErr
	}
	rec.PhaseRun("msm/batch-C", 1, func() {
		cAcc, msmErr = c.G1MSMCtx(ctx, cPoints, cScalars, e.threads(ctx))
	})
	if msmErr != nil {
		return false, msmErr
	}
	var alphaAcc, pj curve.G1Jac
	c.G1FromAffine(&pj, &vk.Alpha1)
	c.G1ScalarMul(&alphaAcc, &pj, &sumR)

	aJacs := make([]curve.G1Jac, m)
	for k, i := range idxs {
		c.G1FromAffine(&pj, &proofs[i].A)
		c.G1ScalarMul(&aJacs[k], &pj, &scalars[i])
	}
	aAff := make([]curve.G1Affine, m)
	c.G1BatchToAffine(aAff, aJacs)

	c.G1Neg(&alphaAcc, &alphaAcc)
	c.G1Neg(&icAcc, &icAcc)
	c.G1Neg(&cAcc, &cAcc)
	var negAlpha, negIC, negC curve.G1Affine
	c.G1ToAffine(&negAlpha, &alphaAcc)
	c.G1ToAffine(&negIC, &icAcc)
	c.G1ToAffine(&negC, &cAcc)

	ps := make([]curve.G1Affine, 0, m+3)
	qs := make([]curve.G2Affine, 0, m+3)
	for k, i := range idxs {
		ps = append(ps, aAff[k])
		qs = append(qs, proofs[i].B)
	}
	ps = append(ps, negAlpha, negIC, negC)
	qs = append(qs, vk.Beta2, vk.Gamma2, vk.Delta2)

	// m+3 independent Miller loops share one final exponentiation — the
	// whole point of the fold; the span grain exposes that to telemetry.
	ok := false
	t0 := probe.Begin()
	rec.PhaseRun("pairing/batch-check", m+3, func() {
		ok = e.Pair.PairingCheck(ps, qs)
	})
	probe.Observe(telemetry.KernelPairing, t0, m+3)
	e.recPairing(m + 3)
	return ok, nil
}
