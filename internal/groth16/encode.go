package groth16

import (
	"fmt"
	"io"

	"zkperf/internal/curve"
	"zkperf/internal/ff"
	"zkperf/internal/witness"
)

// Artifact serialization. The snarkjs pipeline the paper profiles moves
// stage outputs through files (.zkey, .wtns, proof JSON); the CLI here
// mirrors that, and the traced stage runs include this (de)serialization
// work just as the paper's measurements do.

// Serialize writes the proving key (the .zkey equivalent).
func (pk *ProvingKey) Serialize(w io.Writer, c *curve.Curve) error {
	for _, p := range []*curve.G1Affine{&pk.Alpha1, &pk.Beta1, &pk.Delta1} {
		if _, err := w.Write(c.G1Bytes(p)); err != nil {
			return err
		}
	}
	for _, p := range []*curve.G2Affine{&pk.Beta2, &pk.Delta2} {
		if _, err := w.Write(c.G2Bytes(p)); err != nil {
			return err
		}
	}
	if err := writeU64(w, uint64(pk.DomainSize)); err != nil {
		return err
	}
	for _, s := range [][]curve.G1Affine{pk.A, pk.B1, pk.K, pk.H} {
		if err := c.WriteG1Slice(w, s); err != nil {
			return err
		}
	}
	return c.WriteG2Slice(w, pk.B2)
}

// Deserialize reads a proving key written by Serialize.
func (pk *ProvingKey) Deserialize(r io.Reader, c *curve.Curve) error {
	g1buf := make([]byte, c.G1EncodedLen())
	g2buf := make([]byte, c.G2EncodedLen())
	for _, p := range []*curve.G1Affine{&pk.Alpha1, &pk.Beta1, &pk.Delta1} {
		if _, err := io.ReadFull(r, g1buf); err != nil {
			return err
		}
		if err := c.G1SetBytes(p, g1buf); err != nil {
			return err
		}
	}
	for _, p := range []*curve.G2Affine{&pk.Beta2, &pk.Delta2} {
		if _, err := io.ReadFull(r, g2buf); err != nil {
			return err
		}
		if err := c.G2SetBytes(p, g2buf); err != nil {
			return err
		}
	}
	n, err := readU64(r)
	if err != nil {
		return err
	}
	// The domain size is attacker-controlled on the wire; bound it before
	// the int conversion so it cannot wrap negative or claim an absurd
	// evaluation domain.
	if n > 1<<32 {
		return fmt.Errorf("groth16: malformed proving key: domain size %d", n)
	}
	pk.DomainSize = int(n)
	if pk.A, err = c.ReadG1Slice(r); err != nil {
		return err
	}
	if pk.B1, err = c.ReadG1Slice(r); err != nil {
		return err
	}
	if pk.K, err = c.ReadG1Slice(r); err != nil {
		return err
	}
	if pk.H, err = c.ReadG1Slice(r); err != nil {
		return err
	}
	pk.B2, err = c.ReadG2Slice(r)
	return err
}

// Serialize writes the verifying key.
func (vk *VerifyingKey) Serialize(w io.Writer, c *curve.Curve) error {
	if _, err := w.Write(c.G1Bytes(&vk.Alpha1)); err != nil {
		return err
	}
	for _, p := range []*curve.G2Affine{&vk.Beta2, &vk.Gamma2, &vk.Delta2} {
		if _, err := w.Write(c.G2Bytes(p)); err != nil {
			return err
		}
	}
	return c.WriteG1Slice(w, vk.IC)
}

// Deserialize reads a verifying key.
func (vk *VerifyingKey) Deserialize(r io.Reader, c *curve.Curve) error {
	g1buf := make([]byte, c.G1EncodedLen())
	g2buf := make([]byte, c.G2EncodedLen())
	if _, err := io.ReadFull(r, g1buf); err != nil {
		return err
	}
	if err := c.G1SetBytes(&vk.Alpha1, g1buf); err != nil {
		return err
	}
	for _, p := range []*curve.G2Affine{&vk.Beta2, &vk.Gamma2, &vk.Delta2} {
		if _, err := io.ReadFull(r, g2buf); err != nil {
			return err
		}
		if err := c.G2SetBytes(p, g2buf); err != nil {
			return err
		}
	}
	var err error
	vk.IC, err = c.ReadG1Slice(r)
	return err
}

// Serialize writes a proof (2 G1 points + 1 G2 point — a few hundred
// bytes, the succinctness the paper highlights).
func (p *Proof) Serialize(w io.Writer, c *curve.Curve) error {
	if _, err := w.Write(c.G1Bytes(&p.A)); err != nil {
		return err
	}
	if _, err := w.Write(c.G2Bytes(&p.B)); err != nil {
		return err
	}
	_, err := w.Write(c.G1Bytes(&p.C))
	return err
}

// Deserialize reads a proof.
func (p *Proof) Deserialize(r io.Reader, c *curve.Curve) error {
	g1buf := make([]byte, c.G1EncodedLen())
	g2buf := make([]byte, c.G2EncodedLen())
	if _, err := io.ReadFull(r, g1buf); err != nil {
		return err
	}
	if err := c.G1SetBytes(&p.A, g1buf); err != nil {
		return err
	}
	if _, err := io.ReadFull(r, g2buf); err != nil {
		return err
	}
	if err := c.G2SetBytes(&p.B, g2buf); err != nil {
		return err
	}
	if _, err := io.ReadFull(r, g1buf); err != nil {
		return err
	}
	return c.G1SetBytes(&p.C, g1buf)
}

// WriteWitness serializes a witness (the .wtns equivalent).
func WriteWitness(w io.Writer, fr *ff.Field, wit *witness.Witness) error {
	if err := curve.WriteFrSlice(w, fr, wit.Full); err != nil {
		return err
	}
	return curve.WriteFrSlice(w, fr, wit.Public)
}

// ReadWitness deserializes a witness.
func ReadWitness(r io.Reader, fr *ff.Field) (*witness.Witness, error) {
	full, err := curve.ReadFrSlice(r, fr)
	if err != nil {
		return nil, err
	}
	pub, err := curve.ReadFrSlice(r, fr)
	if err != nil {
		return nil, err
	}
	if len(pub) > len(full) {
		return nil, fmt.Errorf("groth16: malformed witness encoding")
	}
	return &witness.Witness{Full: full, Public: pub}, nil
}

func writeU64(w io.Writer, v uint64) error {
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	_, err := w.Write(b[:])
	return err
}

func readU64(r io.Reader) (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v, nil
}
