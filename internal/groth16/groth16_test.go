package groth16

import (
	"testing"

	"zkperf/internal/circuit"
	"zkperf/internal/curve"
	"zkperf/internal/ff"
	"zkperf/internal/witness"
)

// endToEnd runs compile → setup → witness → prove → verify on the
// exponentiation circuit.
func endToEnd(t *testing.T, c *curve.Curve, e int, threads int) {
	t.Helper()
	fr := c.Fr
	eng := NewEngine(c)
	eng.Threads = threads

	sys, prog, err := circuit.CompileSource(fr, circuit.ExponentiateSource(e))
	if err != nil {
		t.Fatal(err)
	}
	rng := ff.NewRNG(1)
	pk, vk, err := eng.Setup(sys, rng)
	if err != nil {
		t.Fatal(err)
	}
	var x ff.Element
	fr.SetUint64(&x, 7)
	w, err := witness.Solve(sys, prog, witness.Assignment{"x": x})
	if err != nil {
		t.Fatal(err)
	}
	proof, err := eng.Prove(sys, pk, w, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Verify(vk, proof, w.Public); err != nil {
		t.Fatalf("valid proof rejected: %v", err)
	}

	// A proof for a different public output must fail.
	badPublic := make([]ff.Element, len(w.Public))
	copy(badPublic, w.Public)
	fr.SetUint64(&badPublic[1], 424242)
	if err := eng.Verify(vk, proof, badPublic); err == nil {
		t.Fatal("proof accepted for wrong public input")
	}
}

func TestGroth16EndToEndBN254(t *testing.T)    { endToEnd(t, curve.NewBN254(), 30, 1) }
func TestGroth16EndToEndBLS12381(t *testing.T) { endToEnd(t, curve.NewBLS12381(), 30, 1) }
func TestGroth16Parallel(t *testing.T)         { endToEnd(t, curve.NewBN254(), 64, 4) }

func TestGroth16TamperedProof(t *testing.T) {
	c := curve.NewBN254()
	fr := c.Fr
	eng := NewEngine(c)
	sys, prog, err := circuit.CompileSource(fr, circuit.ExponentiateSource(16))
	if err != nil {
		t.Fatal(err)
	}
	rng := ff.NewRNG(3)
	pk, vk, err := eng.Setup(sys, rng)
	if err != nil {
		t.Fatal(err)
	}
	var x ff.Element
	fr.SetUint64(&x, 2)
	w, _ := witness.Solve(sys, prog, witness.Assignment{"x": x})
	proof, err := eng.Prove(sys, pk, w, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Swap A for the generator: must fail.
	tampered := *proof
	tampered.A = c.G1Gen
	if err := eng.Verify(vk, &tampered, w.Public); err == nil {
		t.Error("tampered proof (A) accepted")
	}
	// Swap C for the generator: must fail.
	tampered = *proof
	tampered.C = c.G1Gen
	if err := eng.Verify(vk, &tampered, w.Public); err == nil {
		t.Error("tampered proof (C) accepted")
	}
}

func TestGroth16ZeroKnowledgeBlinding(t *testing.T) {
	// Two proofs of the same statement with different prover randomness
	// must differ (the r/s blinding), yet both verify.
	c := curve.NewBN254()
	fr := c.Fr
	eng := NewEngine(c)
	sys, prog, _ := circuit.CompileSource(fr, circuit.ExponentiateSource(8))
	rng := ff.NewRNG(4)
	pk, vk, err := eng.Setup(sys, rng)
	if err != nil {
		t.Fatal(err)
	}
	var x ff.Element
	fr.SetUint64(&x, 5)
	w, _ := witness.Solve(sys, prog, witness.Assignment{"x": x})
	p1, err := eng.Prove(sys, pk, w, ff.NewRNG(100))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := eng.Prove(sys, pk, w, ff.NewRNG(200))
	if err != nil {
		t.Fatal(err)
	}
	if fr.Equal(&p1.A.X, &p2.A.X) && fr.Equal(&p1.A.Y, &p2.A.Y) {
		t.Error("two proofs with different randomness have identical A — blinding broken")
	}
	if err := eng.Verify(vk, p1, w.Public); err != nil {
		t.Error(err)
	}
	if err := eng.Verify(vk, p2, w.Public); err != nil {
		t.Error(err)
	}
}

func TestGroth16MiMCCircuit(t *testing.T) {
	c := curve.NewBN254()
	fr := c.Fr
	eng := NewEngine(c)
	sys, prog, err := circuit.MiMCHashCircuit(fr, 11)
	if err != nil {
		t.Fatal(err)
	}
	rng := ff.NewRNG(5)
	pk, vk, err := eng.Setup(sys, rng)
	if err != nil {
		t.Fatal(err)
	}
	var m ff.Element
	fr.Random(&m, rng)
	w, err := witness.Solve(sys, prog, witness.Assignment{"m": m})
	if err != nil {
		t.Fatal(err)
	}
	proof, err := eng.Prove(sys, pk, w, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Verify(vk, proof, w.Public); err != nil {
		t.Fatal(err)
	}
}

func TestGroth16KeyMismatch(t *testing.T) {
	c := curve.NewBN254()
	fr := c.Fr
	eng := NewEngine(c)
	sys8, prog8, _ := circuit.CompileSource(fr, circuit.ExponentiateSource(8))
	sys16, _, _ := circuit.CompileSource(fr, circuit.ExponentiateSource(16))
	rng := ff.NewRNG(6)
	pk16, _, err := eng.Setup(sys16, rng)
	if err != nil {
		t.Fatal(err)
	}
	var x ff.Element
	fr.SetUint64(&x, 2)
	w8, _ := witness.Solve(sys8, prog8, witness.Assignment{"x": x})
	if _, err := eng.Prove(sys8, pk16, w8, rng); err == nil {
		t.Error("proving with a mismatched key should fail")
	}
}

func TestGroth16EmptySystem(t *testing.T) {
	c := curve.NewBN254()
	eng := NewEngine(c)
	sys, _ := circuit.NewBuilder(c.Fr).Compile()
	if _, _, err := eng.Setup(sys, ff.NewRNG(1)); err == nil {
		t.Error("setup on an empty system should fail")
	}
}

func TestVerifyPublicLengthMismatch(t *testing.T) {
	c := curve.NewBN254()
	fr := c.Fr
	eng := NewEngine(c)
	sys, prog, _ := circuit.CompileSource(fr, circuit.ExponentiateSource(8))
	rng := ff.NewRNG(7)
	pk, vk, _ := eng.Setup(sys, rng)
	var x ff.Element
	fr.SetUint64(&x, 2)
	w, _ := witness.Solve(sys, prog, witness.Assignment{"x": x})
	proof, _ := eng.Prove(sys, pk, w, rng)
	if err := eng.Verify(vk, proof, w.Public[:1]); err == nil {
		t.Error("short public witness accepted")
	}
}

func TestGroth16RangeCheckCircuit(t *testing.T) {
	// End-to-end through the bit-decomposition hints (OpBit): proves
	// v ≤ max without revealing v.
	c := curve.NewBN254()
	fr := c.Fr
	eng := NewEngine(c)
	sys, prog, err := circuit.RangeCheckCircuit(fr, 16)
	if err != nil {
		t.Fatal(err)
	}
	rng := ff.NewRNG(8)
	pk, vk, err := eng.Setup(sys, rng)
	if err != nil {
		t.Fatal(err)
	}
	var v, slack, max ff.Element
	fr.SetUint64(&v, 1000)
	fr.SetUint64(&slack, 24)
	fr.SetUint64(&max, 1024)
	w, err := witness.Solve(sys, prog, witness.Assignment{"v": v, "slack": slack, "max": max})
	if err != nil {
		t.Fatal(err)
	}
	proof, err := eng.Prove(sys, pk, w, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Verify(vk, proof, w.Public); err != nil {
		t.Fatal(err)
	}
	// Verifying against a different public bound must fail.
	bad := make([]ff.Element, len(w.Public))
	copy(bad, w.Public)
	fr.SetUint64(&bad[1], 4096)
	if err := eng.Verify(vk, proof, bad); err == nil {
		t.Error("proof accepted under a different public bound")
	}
}

func TestGroth16MerkleCircuit(t *testing.T) {
	c := curve.NewBN254()
	fr := c.Fr
	eng := NewEngine(c)
	const depth, rounds = 4, 11
	sys, prog, err := circuit.MerkleCircuit(fr, depth, rounds)
	if err != nil {
		t.Fatal(err)
	}
	rng := ff.NewRNG(9)
	pk, vk, err := eng.Setup(sys, rng)
	if err != nil {
		t.Fatal(err)
	}
	assign, root := circuit.MerkleAssignment(fr, depth, rounds, 7)
	w, err := witness.Solve(sys, prog, assign)
	if err != nil {
		t.Fatal(err)
	}
	if !fr.Equal(&w.Public[1], &root) {
		t.Fatal("root mismatch")
	}
	proof, err := eng.Prove(sys, pk, w, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Verify(vk, proof, w.Public); err != nil {
		t.Fatal(err)
	}
}
