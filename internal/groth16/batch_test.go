package groth16

import (
	"context"
	"errors"
	"testing"

	"zkperf/internal/circuit"
	"zkperf/internal/curve"
	"zkperf/internal/ff"
	"zkperf/internal/witness"
)

// batchFixture compiles one exponentiation circuit and returns n proofs
// of distinct statements (x = 2, 3, …) with their public witnesses.
func batchFixture(t *testing.T, c *curve.Curve, exp, n int) (*Engine, *VerifyingKey, []*Proof, [][]ff.Element) {
	t.Helper()
	fr := c.Fr
	eng := NewEngine(c)
	sys, prog, err := circuit.CompileSource(fr, circuit.ExponentiateSource(exp))
	if err != nil {
		t.Fatal(err)
	}
	rng := ff.NewRNG(11)
	pk, vk, err := eng.Setup(sys, rng)
	if err != nil {
		t.Fatal(err)
	}
	proofs := make([]*Proof, n)
	publics := make([][]ff.Element, n)
	for i := 0; i < n; i++ {
		var x ff.Element
		fr.SetUint64(&x, uint64(2+i))
		w, err := witness.Solve(sys, prog, witness.Assignment{"x": x})
		if err != nil {
			t.Fatal(err)
		}
		if proofs[i], err = eng.Prove(sys, pk, w, rng); err != nil {
			t.Fatal(err)
		}
		publics[i] = w.Public
	}
	return eng, vk, proofs, publics
}

func TestVerifyBatchAllValid(t *testing.T) {
	eng, vk, proofs, publics := batchFixture(t, curve.NewBN254(), 16, 5)
	results, err := eng.VerifyBatch(vk, proofs, publics)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r != nil {
			t.Errorf("proof %d rejected: %v", i, r)
		}
	}
}

func TestVerifyBatchCorruptedAttribution(t *testing.T) {
	// One corrupted proof in a batch of 64 must be detected and attributed
	// to the right index, leaving the other 63 verdicts clean. The batch
	// reuses a few base proofs across slots — legitimate (a proof may be
	// submitted twice) and it keeps the fixture cheap.
	eng, vk, base, basePub := batchFixture(t, curve.NewBN254(), 16, 4)
	const n = 64
	proofs := make([]*Proof, n)
	publics := make([][]ff.Element, n)
	for i := 0; i < n; i++ {
		proofs[i] = base[i%len(base)]
		publics[i] = basePub[i%len(base)]
	}
	const bad = 17
	tampered := *base[bad%len(base)]
	tampered.A = eng.Curve.G1Gen
	proofs[bad] = &tampered

	results, err := eng.VerifyBatch(vk, proofs, publics)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if i == bad {
			if !errors.Is(r, ErrInvalidProof) {
				t.Errorf("corrupted proof %d not attributed: %v", i, r)
			}
			continue
		}
		if r != nil {
			t.Errorf("valid proof %d rejected: %v", i, r)
		}
	}
}

func TestVerifyBatchMultipleCorrupted(t *testing.T) {
	eng, vk, base, basePub := batchFixture(t, curve.NewBN254(), 16, 3)
	const n = 16
	proofs := make([]*Proof, n)
	publics := make([][]ff.Element, n)
	for i := 0; i < n; i++ {
		proofs[i] = base[i%len(base)]
		publics[i] = basePub[i%len(base)]
	}
	badSet := map[int]bool{0: true, 7: true, 15: true}
	for i := range badSet {
		tampered := *proofs[i]
		tampered.C = eng.Curve.G1Gen
		proofs[i] = &tampered
	}
	results, err := eng.VerifyBatch(vk, proofs, publics)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if badSet[i] != errors.Is(r, ErrInvalidProof) {
			t.Errorf("proof %d: corrupted=%v but verdict %v", i, badSet[i], r)
		}
	}
}

func TestVerifyBatchRandomScalarsDefeatCancellation(t *testing.T) {
	// Forgery: from a valid proof (A,B,C) craft (A,B,C+G) and (A,B,C−G).
	// Each is individually invalid, but their invalid terms cancel in an
	// UNrandomized fold: e(−(C+G),δ)·e(−(C−G),δ) contributes e(−2C,δ)
	// exactly as two honest copies would. With per-proof random scalars
	// the leftover e((r2−r1)·G, δ) survives and the fold rejects.
	eng, vk, base, basePub := batchFixture(t, curve.NewBN254(), 16, 1)
	c := eng.Curve

	forge := func(sign int) *Proof {
		p := *base[0]
		var cj curve.G1Jac
		c.G1FromAffine(&cj, &p.C)
		g := c.G1Gen
		if sign < 0 {
			c.G1NegAffine(&g, &c.G1Gen)
		}
		c.G1AddAffine(&cj, &cj, &g)
		c.G1ToAffine(&p.C, &cj)
		return &p
	}
	proofs := []*Proof{forge(+1), forge(-1)}
	publics := [][]ff.Element{basePub[0], basePub[0]}

	// Both forgeries must fail individually.
	for i, p := range proofs {
		if err := eng.Verify(vk, p, publics[i]); !errors.Is(err, ErrInvalidProof) {
			t.Fatalf("forged proof %d not rejected individually: %v", i, err)
		}
	}

	// With fixed all-ones scalars the fold is fooled — this is exactly the
	// attack the CSPRNG scalars exist to prevent.
	fr := c.Fr
	ones := make([]ff.Element, 2)
	fr.One(&ones[0])
	fr.One(&ones[1])
	ok, err := eng.foldCheck(context.Background(), vk, proofs, publics, ones, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("unrandomized fold rejected the cancellation pair — test construction broken")
	}

	// The real API draws random scalars and must reject both.
	results, err := eng.VerifyBatch(vk, proofs, publics)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if !errors.Is(r, ErrInvalidProof) {
			t.Errorf("randomized batch accepted forged proof %d (verdict %v)", i, r)
		}
	}
}

func TestVerifyBatchShapeErrors(t *testing.T) {
	eng, vk, proofs, publics := batchFixture(t, curve.NewBN254(), 16, 3)
	proofs = append(proofs, nil)
	publics = append(publics, publics[0])
	publics[1] = publics[1][:1] // truncated public witness

	results, err := eng.VerifyBatch(vk, proofs, publics)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(results[3], ErrInvalidProof) {
		t.Errorf("nil proof verdict: %v", results[3])
	}
	if !errors.Is(results[1], ErrInvalidProof) {
		t.Errorf("short public witness verdict: %v", results[1])
	}
	for _, i := range []int{0, 2} {
		if results[i] != nil {
			t.Errorf("valid proof %d rejected alongside malformed items: %v", i, results[i])
		}
	}
}

func TestVerifyBatchEdgeSizes(t *testing.T) {
	eng, vk, proofs, publics := batchFixture(t, curve.NewBN254(), 16, 1)
	results, err := eng.VerifyBatch(vk, nil, nil)
	if err != nil || len(results) != 0 {
		t.Fatalf("empty batch: %v %v", results, err)
	}
	results, err = eng.VerifyBatch(vk, proofs, publics)
	if err != nil {
		t.Fatal(err)
	}
	if results[0] != nil {
		t.Fatalf("singleton batch rejected valid proof: %v", results[0])
	}
	// Mismatched slice lengths are a caller bug, not a per-proof verdict.
	if _, err := eng.VerifyBatch(vk, proofs, nil); err == nil {
		t.Error("proofs/publics length mismatch not rejected")
	}
}
