// Package groth16 implements the Groth16 zk-SNARK proving scheme
// (Groth, EUROCRYPT 2016) — the scheme snarkjs implements and the paper
// characterizes. It provides the setup, proving and verifying stages of
// the workflow in Figure 1 of the paper; the compile and witness stages
// live in the circuit and witness packages.
//
// An Engine bundles a curve, its pairing engine, and the fixed-base
// generator tables; Threads controls the parallelism of the setup and
// proving stages (the scalability analysis sweeps it).
package groth16

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"zkperf/internal/curve"
	"zkperf/internal/ff"
	"zkperf/internal/pairing"
	"zkperf/internal/parallel"
	"zkperf/internal/poly"
	"zkperf/internal/qap"
	"zkperf/internal/r1cs"
	"zkperf/internal/telemetry"
	"zkperf/internal/trace"
	"zkperf/internal/witness"
)

// ProvingKey is the prover's half of the structured reference string.
type ProvingKey struct {
	Alpha1, Beta1, Delta1 curve.G1Affine
	Beta2, Delta2         curve.G2Affine

	// A[i] = [u_i(τ)]₁, B1[i] = [v_i(τ)]₁, B2[i] = [v_i(τ)]₂ for every
	// witness variable i.
	A  []curve.G1Affine
	B1 []curve.G1Affine
	B2 []curve.G2Affine

	// K[i] = [(β·u_i(τ) + α·v_i(τ) + w_i(τ))/δ]₁ for private/internal
	// variables (indices 1+NumPublic …).
	K []curve.G1Affine

	// H[i] = [τ^i·Z(τ)/δ]₁ for i < N−1.
	H []curve.G1Affine

	// DomainSize is the FFT domain size N the key was generated for.
	DomainSize int
}

// VerifyingKey is the verifier's half of the structured reference string.
type VerifyingKey struct {
	Alpha1                curve.G1Affine
	Beta2, Gamma2, Delta2 curve.G2Affine

	// IC[i] = [(β·u_i(τ) + α·v_i(τ) + w_i(τ))/γ]₁ for the constant wire
	// and the public variables (length 1+NumPublic).
	IC []curve.G1Affine
}

// ErrInvalidProof is returned by Verify when the pairing check fails —
// i.e. the proof is well-formed but does not verify. Callers (such as the
// serving layer) use it to distinguish "invalid proof" from infrastructure
// errors.
var ErrInvalidProof = errors.New("groth16: invalid proof")

// Proof is a Groth16 proof: two G1 points and one G2 point (the "hundreds
// of bytes" succinctness the paper cites).
type Proof struct {
	A curve.G1Affine
	B curve.G2Affine
	C curve.G1Affine
}

// Engine runs the Groth16 stages on one curve.
type Engine struct {
	Curve *curve.Curve
	Pair  *pairing.Engine

	// Threads bounds the number of worker goroutines in setup and proving.
	// 1 disables parallelism (required when operation tracing is active).
	Threads int

	// Rec, when non-nil, receives instrumentation events from the stages.
	// Traced runs execute single-threaded regardless of Threads (the same
	// serialization binary instrumentation imposes).
	Rec *trace.Recorder

	g1Tab *curve.G1Table
	g2Tab *curve.G2Table
}

// threads returns the effective worker count for one call: a per-job
// thread budget carried by ctx (granted by the serving layer's workload
// scheduler) overrides the engine's configured Threads; tracing forces 1
// regardless, since instrumentation serializes execution anyway.
func (e *Engine) threads(ctx context.Context) int {
	if e.Rec != nil {
		return 1
	}
	return parallel.ThreadBudget(ctx, e.Threads)
}

// attachCounters routes field-operation counts into the recorder for the
// duration of a stage; the returned function detaches them.
func (e *Engine) attachCounters() func() {
	if e.Rec == nil {
		return func() {}
	}
	fr, fp := e.Curve.Fr, e.Curve.Fp
	fr.Count, fp.Count = &e.Rec.Ops, &e.Rec.Ops
	return func() { fr.Count, fp.Count = nil, nil }
}

// NewEngine creates a Groth16 engine with precomputed generator tables.
func NewEngine(c *curve.Curve) *Engine {
	return &Engine{
		Curve:   c,
		Pair:    pairing.NewEngine(c),
		Threads: 1,
		g1Tab:   c.G1GenTable(),
		g2Tab:   c.G2GenTable(),
	}
}

// Setup runs the trusted setup for the constraint system, producing the
// proving and verification keys. Randomness (the "toxic waste") comes from
// rng; the deterministic generator keeps the analysis reproducible.
func (e *Engine) Setup(sys *r1cs.System, rng *ff.RNG) (*ProvingKey, *VerifyingKey, error) {
	return e.SetupCtx(context.Background(), sys, rng)
}

// SetupCtx is the cancellable Setup: ctx is threaded into the fixed-base
// batch kernels (checked at chunk boundaries) and re-checked between
// stages, so a cancelled caller stops the setup promptly instead of
// computing a key nobody will use.
func (e *Engine) SetupCtx(ctx context.Context, sys *r1cs.System, rng *ff.RNG) (*ProvingKey, *VerifyingKey, error) {
	fr := e.Curve.Fr
	rec := e.Rec
	defer e.attachCounters()()
	if sys.NumConstraints() == 0 {
		return nil, nil, fmt.Errorf("groth16: empty constraint system")
	}
	d, err := poly.NewDomain(fr, sys.NumConstraints()+1)
	if err != nil {
		return nil, nil, err
	}

	nv := sys.NumVariables()
	nPub := 1 + sys.NumPublic
	st := sys.Stats()

	// Toxic waste: τ, α, β, γ, δ — τ resampled until outside the domain.
	var tau, alpha, beta, gamma, delta ff.Element
	var ev *qap.Evaluations
	rec.PhaseRun("bigint/qap-eval", 1, func() {
		for {
			fr.RandomNonZero(&tau, rng)
			ev, err = qap.EvalAtPoint(sys, d, &tau)
			if err == nil {
				return
			}
		}
	})
	// QAP evaluation walks the sparse constraint matrices once and
	// scatters weighted Lagrange values into the per-variable arrays.
	rec.Access(trace.Access{Kind: trace.Sequential, Region: "r1cs.terms",
		RegionBytes: int64(st.NonZeroTerms) * 40, ElemSize: 40, Touches: int64(st.NonZeroTerms)})
	rec.Access(trace.Access{Kind: trace.Random, Region: "qap.uvw",
		RegionBytes: int64(3 * nv * 32), ElemSize: 32, Touches: int64(st.NonZeroTerms), Write: true})
	rec.Access(trace.Access{Kind: trace.Sequential, Region: "domain.lagrange",
		RegionBytes: int64(d.N) * 32, ElemSize: 32, Touches: int64(d.N)})

	fr.RandomNonZero(&alpha, rng)
	fr.RandomNonZero(&beta, rng)
	fr.RandomNonZero(&gamma, rng)
	fr.RandomNonZero(&delta, rng)

	var gammaInv, deltaInv ff.Element
	fr.Inverse(&gammaInv, &gamma)
	fr.Inverse(&deltaInv, &delta)

	// Scalar-side computations.
	kScalars := make([]ff.Element, nv) // (β·u_i + α·v_i + w_i), scaled below
	hScalars := make([]ff.Element, d.N-1)
	rec.PhaseRun("bigint/setup-scalars", 1, func() {
		var t1, t2 ff.Element
		for i := 0; i < nv; i++ {
			fr.Mul(&t1, &beta, &ev.U[i])
			fr.Mul(&t2, &alpha, &ev.V[i])
			fr.Add(&t1, &t1, &t2)
			fr.Add(&kScalars[i], &t1, &ev.W[i])
			if i < nPub {
				fr.Mul(&kScalars[i], &kScalars[i], &gammaInv)
			} else {
				fr.Mul(&kScalars[i], &kScalars[i], &deltaInv)
			}
		}
		// H-query scalars: τ^i·Z(τ)/δ — a serial power chain.
		zTau := d.ZEval(&tau)
		var acc ff.Element
		fr.Mul(&acc, &zTau, &deltaInv)
		for i := range hScalars {
			hScalars[i] = acc
			fr.Mul(&acc, &acc, &tau)
		}
	})
	rec.Access(trace.Access{Kind: trace.Sequential, Region: "qap.uvw",
		RegionBytes: int64(3 * nv * 32), ElemSize: 32, Touches: int64(3 * nv)})
	rec.Access(trace.Access{Kind: trace.Sequential, Region: "setup.scalars",
		RegionBytes: int64((nv + d.N) * 32), ElemSize: 32, Touches: int64(nv + d.N), Write: true})

	// Group-side: fixed-base multiplications against the generator tables.
	pk := &ProvingKey{DomainSize: d.N}
	vk := &VerifyingKey{}

	fbG1 := func(name string, scalars []ff.Element) ([]curve.G1Affine, error) {
		var out []curve.G1Affine
		var ferr error
		rec.PhaseRun("msm/fixed-base-"+name, len(scalars), func() {
			out, ferr = e.g1Tab.MulBatchCtx(ctx, scalars, e.threads(ctx))
		})
		e.recFixedBase(name, len(scalars), false)
		return out, ferr
	}
	if pk.A, err = fbG1("A", ev.U); err != nil {
		return nil, nil, err
	}
	if pk.B1, err = fbG1("B1", ev.V); err != nil {
		return nil, nil, err
	}
	rec.PhaseRun("msm/fixed-base-B2", len(ev.V), func() {
		pk.B2, err = e.g2Tab.MulBatchCtx(ctx, ev.V, e.threads(ctx))
	})
	e.recFixedBase("B2", len(ev.V), true)
	if err != nil {
		return nil, nil, err
	}
	if pk.K, err = fbG1("K", kScalars[nPub:]); err != nil {
		return nil, nil, err
	}
	if pk.H, err = fbG1("H", hScalars); err != nil {
		return nil, nil, err
	}
	if vk.IC, err = fbG1("IC", kScalars[:nPub]); err != nil {
		return nil, nil, err
	}

	var pj curve.G1Jac
	var qj curve.G2Jac
	mulG1 := func(dst *curve.G1Affine, k *ff.Element) {
		e.g1Tab.Mul(&pj, k)
		e.Curve.G1ToAffine(dst, &pj)
	}
	mulG2 := func(dst *curve.G2Affine, k *ff.Element) {
		e.g2Tab.Mul(&qj, k)
		e.Curve.G2ToAffine(dst, &qj)
	}
	mulG1(&pk.Alpha1, &alpha)
	mulG1(&pk.Beta1, &beta)
	mulG1(&pk.Delta1, &delta)
	mulG2(&pk.Beta2, &beta)
	mulG2(&pk.Delta2, &delta)
	vk.Alpha1 = pk.Alpha1
	vk.Beta2 = pk.Beta2
	mulG2(&vk.Gamma2, &gamma)
	vk.Delta2 = pk.Delta2

	return pk, vk, nil
}

// Prove generates a proof for the witness under the proving key.
func (e *Engine) Prove(sys *r1cs.System, pk *ProvingKey, w *witness.Witness, rng *ff.RNG) (*Proof, error) {
	return e.ProveCtx(context.Background(), sys, pk, w, rng)
}

// ProveCtx is the cancellable Prove: ctx is threaded into the quotient
// NTTs (checked at pass boundaries) and the four MSMs (checked at
// Pippenger-window boundaries), so a cancelled or deadline-expired job
// stops burning cores within one kernel chunk instead of running the
// proof to completion.
func (e *Engine) ProveCtx(ctx context.Context, sys *r1cs.System, pk *ProvingKey, w *witness.Witness, rng *ff.RNG) (*Proof, error) {
	fr := e.Curve.Fr
	c := e.Curve
	rec := e.Rec
	defer e.attachCounters()()
	if len(w.Full) != sys.NumVariables() {
		return nil, fmt.Errorf("groth16: witness length %d != %d variables", len(w.Full), sys.NumVariables())
	}
	if len(pk.A) != len(w.Full) {
		return nil, fmt.Errorf("groth16: proving key shape mismatch")
	}

	d, err := poly.NewDomain(fr, pk.DomainSize)
	if err != nil {
		return nil, err
	}
	if d.N != pk.DomainSize {
		return nil, fmt.Errorf("groth16: domain size mismatch")
	}

	// Quotient polynomial coefficients. The LC evaluation parallelizes
	// across constraints; the NTT passes are layer-serialized, so the
	// phase grain reflects the butterfly-block independence per layer.
	var h []ff.Element
	rec.PhaseRun("ntt/quotient", d.N/64+1, func() {
		h, err = qap.QuotientEvalsCtx(ctx, sys, d, w.Full, e.threads(ctx))
	})
	e.recQuotient(sys, d.N, d.LogN)
	if err != nil {
		return nil, err
	}

	// Blinding factors.
	var r, s ff.Element
	fr.Random(&r, rng)
	fr.Random(&s, rng)

	nPub := 1 + sys.NumPublic
	wPriv := w.Full[nPub:]

	// The five proof MSMs — A, B1, K, H over G1 and B2 over G2 — read
	// disjoint outputs and share only immutable inputs, so with a
	// multi-thread budget they run overlapped, each MSM internally
	// parallel under a weighted share of the budget (the G2 MSM costs
	// roughly 3× a same-size G1 MSM, so it gets the largest share).
	// Under tracing (threads()==1) they run back to back in the original
	// phase order.
	var aAcc, bAcc1, kAcc, hAcc curve.G1Jac
	var bAcc2 curve.G2Jac
	if th := e.threads(ctx); th > 1 {
		share := func(weight int) int {
			s := th * weight / 11
			if s < 1 {
				s = 1
			}
			return s
		}
		var errA, errB1, errB2, errK, errH error
		var wg sync.WaitGroup
		run := func(f func()) {
			wg.Add(1)
			go func() {
				defer wg.Done()
				f()
			}()
		}
		run(func() { aAcc, errA = c.G1MSMCtx(ctx, pk.A, w.Full, share(2)) })
		run(func() { bAcc1, errB1 = c.G1MSMCtx(ctx, pk.B1, w.Full, share(2)) })
		run(func() { bAcc2, errB2 = c.G2MSMCtx(ctx, pk.B2, w.Full, share(3)) })
		run(func() { kAcc, errK = c.G1MSMCtx(ctx, pk.K, wPriv, share(2)) })
		run(func() { hAcc, errH = c.G1MSMCtx(ctx, pk.H[:len(h)], h, share(2)) })
		wg.Wait()
		for _, merr := range []error{errA, errB1, errB2, errK, errH} {
			if merr != nil {
				return nil, merr
			}
		}
	} else {
		msmG1 := func(name string, dst *curve.G1Jac, points []curve.G1Affine, scalars []ff.Element) error {
			var merr error
			grain := (fr.Bits() + 10) / 11 // ≈ number of Pippenger windows
			rec.PhaseRun("msm/"+name, grain, func() {
				*dst, merr = c.G1MSMCtx(ctx, points, scalars, 1)
			})
			e.recMSM(name, len(points), false)
			return merr
		}
		if err = msmG1("A", &aAcc, pk.A, w.Full); err != nil {
			return nil, err
		}
		grain := (fr.Bits() + 10) / 11
		rec.PhaseRun("msm/B2", grain, func() {
			bAcc2, err = c.G2MSMCtx(ctx, pk.B2, w.Full, 1)
		})
		e.recMSM("B2", len(pk.B2), true)
		if err != nil {
			return nil, err
		}
		if err = msmG1("B1", &bAcc1, pk.B1, w.Full); err != nil {
			return nil, err
		}
		if err = msmG1("K", &kAcc, pk.K, wPriv); err != nil {
			return nil, err
		}
		if err = msmG1("H", &hAcc, pk.H[:len(h)], h); err != nil {
			return nil, err
		}
	}

	// A = α + Σ wᵢ·[uᵢ(τ)]₁ + r·δ
	var tj curve.G1Jac
	c.G1FromAffine(&tj, &pk.Alpha1)
	c.G1Add(&aAcc, &aAcc, &tj)
	var deltaJ curve.G1Jac
	c.G1FromAffine(&deltaJ, &pk.Delta1)
	var rDelta curve.G1Jac
	c.G1ScalarMul(&rDelta, &deltaJ, &r)
	c.G1Add(&aAcc, &aAcc, &rDelta)

	// B (G2) = β + Σ wᵢ·[vᵢ(τ)]₂ + s·δ; and its G1 shadow for C.
	var tj2 curve.G2Jac
	c.G2FromAffine(&tj2, &pk.Beta2)
	c.G2Add(&bAcc2, &bAcc2, &tj2)
	var delta2J, sDelta2 curve.G2Jac
	c.G2FromAffine(&delta2J, &pk.Delta2)
	c.G2ScalarMul(&sDelta2, &delta2J, &s)
	c.G2Add(&bAcc2, &bAcc2, &sDelta2)

	c.G1FromAffine(&tj, &pk.Beta1)
	c.G1Add(&bAcc1, &bAcc1, &tj)
	var sDelta1 curve.G1Jac
	c.G1ScalarMul(&sDelta1, &deltaJ, &s)
	c.G1Add(&bAcc1, &bAcc1, &sDelta1)

	// C = Σ_priv wᵢ·Kᵢ + Σ hᵢ·Hᵢ + s·A + r·B1 − r·s·δ
	cAcc := kAcc
	c.G1Add(&cAcc, &cAcc, &hAcc)
	var term curve.G1Jac
	rec.PhaseRun("bigint/proof-assembly", 1, func() {
		c.G1ScalarMul(&term, &aAcc, &s)
		c.G1Add(&cAcc, &cAcc, &term)
		c.G1ScalarMul(&term, &bAcc1, &r)
		c.G1Add(&cAcc, &cAcc, &term)
		var rs ff.Element
		fr.Mul(&rs, &r, &s)
		c.G1ScalarMul(&term, &deltaJ, &rs)
		c.G1Neg(&term, &term)
		c.G1Add(&cAcc, &cAcc, &term)
	})

	proof := &Proof{}
	c.G1ToAffine(&proof.A, &aAcc)
	c.G2ToAffine(&proof.B, &bAcc2)
	c.G1ToAffine(&proof.C, &cAcc)
	return proof, nil
}

// Verify checks a proof against the public witness (the vector
// [1, public wires] produced by the witness stage). It returns nil if the
// proof is valid.
func (e *Engine) Verify(vk *VerifyingKey, proof *Proof, public []ff.Element) error {
	return e.VerifyCtx(context.Background(), vk, proof, public)
}

// VerifyCtx is Verify with a context: the IC MSM picks up cancellation
// and the telemetry probe from ctx, and the pairing check is attributed
// as a kernel span (four Miller loops + one final exponentiation).
func (e *Engine) VerifyCtx(ctx context.Context, vk *VerifyingKey, proof *Proof, public []ff.Element) error {
	c := e.Curve
	rec := e.Rec
	probe := telemetry.ProbeFromContext(ctx)
	defer e.attachCounters()()
	if len(public) != len(vk.IC) {
		return fmt.Errorf("groth16: public witness length %d != %d", len(public), len(vk.IC))
	}
	// IC = Σ publicᵢ·ICᵢ
	var ic curve.G1Affine
	var icErr error
	rec.PhaseRun("msm/IC", 1, func() {
		var icAcc curve.G1Jac
		icAcc, icErr = c.G1MSMCtx(ctx, vk.IC, public, 1)
		c.G1ToAffine(&ic, &icAcc)
	})
	if icErr != nil {
		return icErr
	}

	// e(A,B) == e(α,β)·e(IC,γ)·e(C,δ)  ⇔
	// e(A,B)·e(−α,β)·e(−IC,γ)·e(−C,δ) == 1
	var negAlpha, negIC, negC curve.G1Affine
	c.G1NegAffine(&negAlpha, &vk.Alpha1)
	c.G1NegAffine(&negIC, &ic)
	c.G1NegAffine(&negC, &proof.C)
	ok := false
	// The four Miller loops are independent (grain 4); the shared final
	// exponentiation is serial.
	t0 := probe.Begin()
	rec.PhaseRun("pairing/check", 4, func() {
		ok = e.Pair.PairingCheck(
			[]curve.G1Affine{proof.A, negAlpha, negIC, negC},
			[]curve.G2Affine{proof.B, vk.Beta2, vk.Gamma2, vk.Delta2},
		)
	})
	probe.Observe(telemetry.KernelPairing, t0, 4)
	e.recPairing(4)
	if !ok {
		return ErrInvalidProof
	}
	return nil
}
