package groth16

import (
	"bytes"
	"testing"

	"zkperf/internal/circuit"
	"zkperf/internal/curve"
	"zkperf/internal/ff"
	"zkperf/internal/witness"
)

func setupArtifacts(t *testing.T) (*Engine, *ProvingKey, *VerifyingKey, *Proof, *witness.Witness) {
	t.Helper()
	c := curve.NewBN254()
	eng := NewEngine(c)
	sys, prog, err := circuit.CompileSource(c.Fr, circuit.ExponentiateSource(8))
	if err != nil {
		t.Fatal(err)
	}
	rng := ff.NewRNG(11)
	pk, vk, err := eng.Setup(sys, rng)
	if err != nil {
		t.Fatal(err)
	}
	var x ff.Element
	c.Fr.SetUint64(&x, 3)
	w, err := witness.Solve(sys, prog, witness.Assignment{"x": x})
	if err != nil {
		t.Fatal(err)
	}
	proof, err := eng.Prove(sys, pk, w, rng)
	if err != nil {
		t.Fatal(err)
	}
	return eng, pk, vk, proof, w
}

func TestProvingKeyRoundTrip(t *testing.T) {
	eng, pk, _, _, _ := setupArtifacts(t)
	var buf bytes.Buffer
	if err := pk.Serialize(&buf, eng.Curve); err != nil {
		t.Fatal(err)
	}
	var pk2 ProvingKey
	if err := pk2.Deserialize(&buf, eng.Curve); err != nil {
		t.Fatal(err)
	}
	if pk2.DomainSize != pk.DomainSize ||
		len(pk2.A) != len(pk.A) || len(pk2.B1) != len(pk.B1) ||
		len(pk2.B2) != len(pk.B2) || len(pk2.K) != len(pk.K) || len(pk2.H) != len(pk.H) {
		t.Fatal("proving key shape changed in round trip")
	}
	fp := eng.Curve.Fp
	for i := range pk.A {
		if pk.A[i].Inf != pk2.A[i].Inf {
			t.Fatal("infinity flag changed")
		}
		if !pk.A[i].Inf && (!fp.Equal(&pk.A[i].X, &pk2.A[i].X) || !fp.Equal(&pk.A[i].Y, &pk2.A[i].Y)) {
			t.Fatalf("pk.A[%d] changed in round trip", i)
		}
	}
}

// TestRoundTrippedKeyStillProves: the strongest serialization check — a
// deserialized key produces proofs that verify.
func TestRoundTrippedKeyStillProves(t *testing.T) {
	eng, pk, vk, _, w := setupArtifacts(t)
	var buf bytes.Buffer
	if err := pk.Serialize(&buf, eng.Curve); err != nil {
		t.Fatal(err)
	}
	var pk2 ProvingKey
	if err := pk2.Deserialize(&buf, eng.Curve); err != nil {
		t.Fatal(err)
	}
	sys, _, _ := circuit.CompileSource(eng.Curve.Fr, circuit.ExponentiateSource(8))
	proof, err := eng.Prove(sys, &pk2, w, ff.NewRNG(77))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Verify(vk, proof, w.Public); err != nil {
		t.Fatalf("proof from round-tripped key rejected: %v", err)
	}
}

func TestVerifyingKeyRoundTrip(t *testing.T) {
	eng, _, vk, proof, w := setupArtifacts(t)
	var buf bytes.Buffer
	if err := vk.Serialize(&buf, eng.Curve); err != nil {
		t.Fatal(err)
	}
	var vk2 VerifyingKey
	if err := vk2.Deserialize(&buf, eng.Curve); err != nil {
		t.Fatal(err)
	}
	if err := eng.Verify(&vk2, proof, w.Public); err != nil {
		t.Fatalf("round-tripped vk rejects valid proof: %v", err)
	}
}

func TestProofRoundTrip(t *testing.T) {
	eng, _, vk, proof, w := setupArtifacts(t)
	var buf bytes.Buffer
	if err := proof.Serialize(&buf, eng.Curve); err != nil {
		t.Fatal(err)
	}
	// Groth16 proofs are succinct: assert the "hundreds of bytes" claim.
	if buf.Len() > 512 {
		t.Errorf("proof encoding is %d bytes — not succinct", buf.Len())
	}
	var p2 Proof
	if err := p2.Deserialize(&buf, eng.Curve); err != nil {
		t.Fatal(err)
	}
	if err := eng.Verify(vk, &p2, w.Public); err != nil {
		t.Fatalf("round-tripped proof rejected: %v", err)
	}
}

func TestWitnessRoundTrip(t *testing.T) {
	eng, _, _, _, w := setupArtifacts(t)
	var buf bytes.Buffer
	if err := WriteWitness(&buf, eng.Curve.Fr, w); err != nil {
		t.Fatal(err)
	}
	w2, err := ReadWitness(&buf, eng.Curve.Fr)
	if err != nil {
		t.Fatal(err)
	}
	if len(w2.Full) != len(w.Full) || len(w2.Public) != len(w.Public) {
		t.Fatal("witness shape changed")
	}
	for i := range w.Full {
		if !eng.Curve.Fr.Equal(&w.Full[i], &w2.Full[i]) {
			t.Fatalf("witness value %d changed", i)
		}
	}
}

func TestDeserializeGarbage(t *testing.T) {
	c := curve.NewBN254()
	var pk ProvingKey
	if err := pk.Deserialize(bytes.NewReader([]byte{1, 2, 3}), c); err == nil {
		t.Error("garbage proving key accepted")
	}
	var vk VerifyingKey
	if err := vk.Deserialize(bytes.NewReader(nil), c); err == nil {
		t.Error("empty verifying key accepted")
	}
	var p Proof
	if err := p.Deserialize(bytes.NewReader(make([]byte, 10)), c); err == nil {
		t.Error("truncated proof accepted")
	}
	// A proof with a corrupted point must fail validation (off-curve).
	eng, _, _, proof, _ := setupArtifacts(t)
	var buf bytes.Buffer
	if err := proof.Serialize(&buf, eng.Curve); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[10] ^= 0xFF
	var bad Proof
	if err := bad.Deserialize(bytes.NewReader(data), eng.Curve); err == nil {
		t.Error("off-curve proof point accepted")
	}
}

func TestG1G2PointEncoding(t *testing.T) {
	c := curve.NewBN254()
	// Finite point round trip.
	data := c.G1Bytes(&c.G1Gen)
	var p curve.G1Affine
	if err := c.G1SetBytes(&p, data); err != nil {
		t.Fatal(err)
	}
	if !c.Fp.Equal(&p.X, &c.G1Gen.X) || !c.Fp.Equal(&p.Y, &c.G1Gen.Y) {
		t.Error("G1 round trip changed the point")
	}
	// Infinity round trip.
	inf := curve.G1Affine{Inf: true}
	var infBack curve.G1Affine
	if err := c.G1SetBytes(&infBack, c.G1Bytes(&inf)); err != nil || !infBack.Inf {
		t.Error("G1 infinity round trip failed")
	}
	// G2.
	data2 := c.G2Bytes(&c.G2Gen)
	var q curve.G2Affine
	if err := c.G2SetBytes(&q, data2); err != nil {
		t.Fatal(err)
	}
	if !c.G2IsOnCurve(&q) {
		t.Error("G2 round trip left the curve")
	}
	// Wrong lengths rejected.
	if err := c.G1SetBytes(&p, data[:10]); err == nil {
		t.Error("short G1 encoding accepted")
	}
	if err := c.G2SetBytes(&q, data2[:10]); err == nil {
		t.Error("short G2 encoding accepted")
	}
}
