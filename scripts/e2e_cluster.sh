#!/bin/sh
# e2e smoke for the multi-node proving cluster: two zkserve nodes behind
# a zkgateway on loopback, driven through zkcli.
#
# What it proves, end to end over real sockets:
#   1. async jobs submitted through the gateway run to completion and
#      the proof verifies;
#   2. routing is shard-stable — repeated submits of the same circuits
#      never duplicate a trusted setup onto the other node (per-node
#      setup counters stop growing);
#   3. killing one node fails its shard over to the survivor and the
#      cluster keeps serving.
#
# Ports are loopback-only and offbeat (1809x) to avoid colliding with a
# developer's running zkserve.
set -eu

BASE="${TMPDIR:-/tmp}/zkperf-e2e-$$"
mkdir -p "$BASE"
NODE_A=127.0.0.1:18091
NODE_B=127.0.0.1:18092
GW=127.0.0.1:18090
GW_URL="http://$GW"

cleanup() {
    # shellcheck disable=SC2046 — word-splitting the PID list is the point
    kill $(cat "$BASE"/*.pid 2>/dev/null) 2>/dev/null || true
    rm -rf "$BASE"
}
trap cleanup EXIT INT TERM

echo "e2e: building binaries into $BASE"
go build -o "$BASE/zkserve" ./cmd/zkserve
go build -o "$BASE/zkgateway" ./cmd/zkgateway
go build -o "$BASE/zkcli" ./cmd/zkcli

"$BASE/zkserve" -addr "$NODE_A" -workers 2 -queue 16 >"$BASE/node-a.log" 2>&1 &
echo $! > "$BASE/node-a.pid"
"$BASE/zkserve" -addr "$NODE_B" -workers 2 -queue 16 >"$BASE/node-b.log" 2>&1 &
echo $! > "$BASE/node-b.pid"
"$BASE/zkgateway" -addr "$GW" -nodes "a=http://$NODE_A,b=http://$NODE_B" \
    -probe-every 200ms -fail-threshold 1 >"$BASE/gateway.log" 2>&1 &
echo $! > "$BASE/gateway.pid"

wait_up() {
    i=0
    while ! "$BASE/zkcli" stats -addr "$1" -json >/dev/null 2>&1; do
        i=$((i+1))
        [ "$i" -gt 50 ] && { echo "e2e: $1 never came up"; tail -n 20 "$BASE"/*.log; exit 1; }
        sleep 0.2
    done
}
wait_up "http://$NODE_A"
wait_up "http://$NODE_B"
wait_up "$GW_URL"
echo "e2e: two nodes + gateway up"

# Two distinct circuits so the shard map has something to keep apart.
"$BASE/zkcli" gen -e 32 -o "$BASE/c32.zkc"
"$BASE/zkcli" gen -e 64 -o "$BASE/c64.zkc"

# setups_total sums the per-node trusted-setup counters (the gateway
# aggregate also carries this, but reading the nodes directly is what
# pins *where* the setups happened).
setups_total() {
    total=0
    for node in "http://$NODE_A" "http://$NODE_B"; do
        n=$("$BASE/zkcli" stats -addr "$node" -json \
            | sed -n '/"cache"/,/}/s/.*"setups": *\([0-9][0-9]*\).*/\1/p')
        total=$((total + n))
    done
    echo "$total"
}

run_job() { # run_job circuit x
    id=$("$BASE/zkcli" job submit -addr "$GW_URL" -circuit "$1" -input "x=$2" 2>>"$BASE/cli.log")
    "$BASE/zkcli" job wait -addr "$GW_URL" -id "$id" -timeout 2m \
        -proof "$BASE/last.proof" >>"$BASE/cli.log" 2>&1
    echo "$id"
}

echo "e2e: async jobs for two circuits through the gateway"
ID1=$(run_job "$BASE/c32.zkc" 3)
ID2=$(run_job "$BASE/c64.zkc" 3)
case "$ID1" in
    *@a|*@b) ;;
    *) echo "e2e: FAIL job id $ID1 lacks the @node suffix"; exit 1 ;;
esac
SETUPS1=$(setups_total)
[ "$SETUPS1" -eq 2 ] || { echo "e2e: FAIL expected 2 setups after 2 circuits, got $SETUPS1"; exit 1; }

echo "e2e: re-submitting both circuits — setups must not grow (shard-stable routing)"
run_job "$BASE/c32.zkc" 5 >/dev/null
run_job "$BASE/c64.zkc" 5 >/dev/null
SETUPS2=$(setups_total)
[ "$SETUPS2" -eq "$SETUPS1" ] || {
    echo "e2e: FAIL setups grew $SETUPS1 -> $SETUPS2 on repeat submits — routing not shard-stable"
    exit 1
}

echo "e2e: batched verify through the gateway (scatter across both shards)"
"$BASE/zkcli" prove -addr "$GW_URL" -circuit "$BASE/c32.zkc" -input x=2 \
    -proof "$BASE/c32.proof" >>"$BASE/cli.log" 2>&1
"$BASE/zkcli" prove -addr "$GW_URL" -circuit "$BASE/c64.zkc" -input x=2 \
    -proof "$BASE/c64.proof" >>"$BASE/cli.log" 2>&1
cat > "$BASE/manifest.json" <<EOF
[
  {"circuit": "$BASE/c32.zkc", "proof": "$BASE/c32.proof", "public": ["4294967296"]},
  {"circuit": "$BASE/c64.zkc", "proof": "$BASE/c64.proof", "public": ["18446744073709551616"]}
]
EOF
"$BASE/zkcli" verify -addr "$GW_URL" -batch "$BASE/manifest.json" >>"$BASE/cli.log" 2>&1 || {
    echo "e2e: FAIL gateway verify-batch rejected valid proofs"; exit 1
}
# A corrupted manifest entry must fail the command (per-item attribution).
cat > "$BASE/manifest-bad.json" <<EOF
[
  {"circuit": "$BASE/c32.zkc", "proof": "$BASE/c32.proof", "public": ["4294967296"]},
  {"circuit": "$BASE/c64.zkc", "proof": "$BASE/c64.proof", "public": ["999"]}
]
EOF
if "$BASE/zkcli" verify -addr "$GW_URL" -batch "$BASE/manifest-bad.json" >>"$BASE/cli.log" 2>&1; then
    echo "e2e: FAIL gateway verify-batch accepted a wrong public input"
    exit 1
fi

echo "e2e: killing node a — its shard must fail over"
kill "$(cat "$BASE/node-a.pid")"
rm -f "$BASE/node-a.pid"
sleep 1 # let a probe round notice

ID3=$(run_job "$BASE/c32.zkc" 7)
ID4=$(run_job "$BASE/c64.zkc" 7)
case "$ID3$ID4" in
    *@a*) echo "e2e: FAIL job routed to the dead node ($ID3 $ID4)"; exit 1 ;;
esac
echo "e2e: jobs after node death: $ID3 $ID4 (both on survivor)"

echo "e2e: PASS"
