#!/bin/sh
# Crash-restart chaos drill for the durable job journal: one journaled
# zkserve under live zkload -async traffic, killed with SIGKILL mid-job
# and restarted on the same WAL.
#
# What it proves, end to end over real sockets and a real kill -9:
#   1. jobs accepted before the crash survive it — their IDs resolve
#      after restart and queued-at-crash work re-executes to completion;
#   2. Idempotency-Key dedup crosses the crash — retrying the same
#      submit lands on the pre-crash job (200, same ID), so client
#      retries are exactly-once;
#   3. old IDs also resolve through a zkgateway (<id>@<node>);
#   4. a torn WAL tail (the kill-between-write window, injected here as
#      trailing garbage) is quarantined on boot, never fatal, and the
#      records before it still replay.
#
# Ports are loopback-only and offbeat (1809x) to avoid colliding with a
# developer's running zkserve.
set -eu

BASE="${TMPDIR:-/tmp}/zkperf-crash-$$"
mkdir -p "$BASE"
NODE=127.0.0.1:18095
NODE_URL="http://$NODE"
GW=127.0.0.1:18096
GW_URL="http://$GW"
WAL_DIR="$BASE/journal"

cleanup() {
    # shellcheck disable=SC2046 — word-splitting the PID list is the point
    kill $(cat "$BASE"/*.pid 2>/dev/null) 2>/dev/null || true
    rm -rf "$BASE"
}
trap cleanup EXIT INT TERM

echo "crash: building binaries into $BASE"
go build -o "$BASE/zkserve" ./cmd/zkserve
go build -o "$BASE/zkgateway" ./cmd/zkgateway
go build -o "$BASE/zkcli" ./cmd/zkcli
go build -o "$BASE/zkload" ./cmd/zkload

start_server() { # start_server logname
    "$BASE/zkserve" -addr "$NODE" -workers 2 -queue 64 \
        -job-journal-dir "$WAL_DIR" >"$BASE/$1.log" 2>&1 &
    echo $! > "$BASE/server.pid"
}

wait_up() {
    i=0
    while ! "$BASE/zkcli" stats -addr "$1" -json >/dev/null 2>&1; do
        i=$((i+1))
        [ "$i" -gt 50 ] && { echo "crash: $1 never came up"; tail -n 20 "$BASE"/*.log; exit 1; }
        sleep 0.2
    done
}

# journal_stat name — pull one zkp journal counter out of /v1/stats.
journal_stat() {
    "$BASE/zkcli" stats -addr "$NODE_URL" -json \
        | sed -n "s/.*\"$1\": *\([0-9][0-9]*\).*/\1/p" | head -n 1
}

start_server server-1
wait_up "$NODE_URL"
"$BASE/zkcli" gen -e 16 -o "$BASE/c16.zkc"

echo "crash: same-process idempotent submit dedups"
ID_A=$("$BASE/zkcli" job submit -addr "$NODE_URL" -circuit "$BASE/c16.zkc" \
    -input x=2 -idempotency-key live-key 2>>"$BASE/cli.log")
ID_B=$("$BASE/zkcli" job submit -addr "$NODE_URL" -circuit "$BASE/c16.zkc" \
    -input x=2 -idempotency-key live-key 2>>"$BASE/cli.log")
[ "$ID_A" = "$ID_B" ] || { echo "crash: FAIL dedup returned $ID_B, want $ID_A"; exit 1; }

echo "crash: starting zkload -async background traffic"
"$BASE/zkload" -addr "$NODE_URL" -async -clients 4 -circuits 2 -size 16 \
    -warmup 0 -measure 30s >"$BASE/zkload.log" 2>&1 &
echo $! > "$BASE/zkload.pid"
sleep 2

echo "crash: submitting marker jobs, then kill -9 mid-traffic"
MARKER=$("$BASE/zkcli" job submit -addr "$NODE_URL" -circuit "$BASE/c16.zkc" \
    -input x=3 -idempotency-key crash-key 2>>"$BASE/cli.log")
# A few extra accepted-but-likely-queued jobs so the WAL holds
# non-terminal work at the moment of death (2 workers, flooded queue).
for i in 1 2 3; do
    "$BASE/zkcli" job submit -addr "$NODE_URL" -circuit "$BASE/c16.zkc" \
        -input "x=$i" >>"$BASE/cli.log" 2>&1
done
kill -9 "$(cat "$BASE/server.pid")"
sleep 0.5

echo "crash: restarting on the same journal"
start_server server-2
wait_up "$NODE_URL"
REPLAYED=$(journal_stat replayed)
REEXECUTED=$(journal_stat reexecuted)
echo "crash: journal replayed=$REPLAYED reexecuted=$REEXECUTED"
[ "${REPLAYED:-0}" -ge 1 ] || { echo "crash: FAIL nothing replayed after restart"; exit 1; }
[ "${REEXECUTED:-0}" -ge 1 ] || { echo "crash: FAIL no queued-at-crash job re-executed"; exit 1; }

echo "crash: pre-crash job ID must resolve and complete"
"$BASE/zkcli" job wait -addr "$NODE_URL" -id "$MARKER" -timeout 2m \
    >>"$BASE/cli.log" 2>&1 || {
    echo "crash: FAIL marker job $MARKER did not complete after restart"; exit 1
}

echo "crash: idempotent resubmit must dedup across the crash"
ID_C=$("$BASE/zkcli" job submit -addr "$NODE_URL" -circuit "$BASE/c16.zkc" \
    -input x=3 -idempotency-key crash-key 2>>"$BASE/cli.log")
[ "$ID_C" = "$MARKER" ] || {
    echo "crash: FAIL post-crash resubmit got $ID_C, want pre-crash $MARKER"; exit 1
}
# dedup_hits is a per-process counter: only the post-restart hit shows.
DEDUP=$(journal_stat dedup_hits)
[ "${DEDUP:-0}" -ge 1 ] || { echo "crash: FAIL dedup_hits=$DEDUP, want >= 1"; exit 1; }

echo "crash: pre-crash ID must resolve through a gateway as <id>@<node>"
"$BASE/zkgateway" -addr "$GW" -nodes "n=$NODE_URL" \
    -probe-every 200ms >"$BASE/gateway.log" 2>&1 &
echo $! > "$BASE/gateway.pid"
wait_up "$GW_URL"
"$BASE/zkcli" job status -addr "$GW_URL" -id "$MARKER@n" >>"$BASE/cli.log" 2>&1 || {
    echo "crash: FAIL gateway lookup of $MARKER@n failed"; exit 1
}

echo "crash: torn-tail injection — garbage at the WAL tail must quarantine, not kill the boot"
kill -9 "$(cat "$BASE/server.pid")"
sleep 0.5
printf 'TORN-TAIL-GARBAGE-NOT-A-FRAME' >> "$WAL_DIR/jobs.wal"
start_server server-3
wait_up "$NODE_URL"
TORN=$(journal_stat torn_records)
[ "${TORN:-0}" -ge 1 ] || { echo "crash: FAIL torn_records=$TORN after tail corruption"; exit 1; }
[ -s "$WAL_DIR/jobs.wal.corrupt" ] || {
    echo "crash: FAIL no quarantine file after tail corruption"; exit 1
}
"$BASE/zkcli" job status -addr "$NODE_URL" -id "$MARKER" >>"$BASE/cli.log" 2>&1 || {
    echo "crash: FAIL marker job lost after torn-tail recovery"; exit 1
}

echo "crash: PASS"
