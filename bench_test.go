// Package zkperf_bench regenerates the paper's tables and figures as Go
// benchmarks — one per artifact — plus kernel microbenchmarks and the
// ablation studies called out in DESIGN.md.
//
// The table/figure benchmarks run a shared experiment suite (quick sweep:
// BN128, 2^10–2^12, all three CPU models). Run them with
//
//	go test -bench=. -benchmem
//
// and use cmd/zkbench for the full-size sweeps.
package zkperf_bench

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"

	"math/big"
	"zkperf/internal/backend"
	"zkperf/internal/circuit"
	"zkperf/internal/core"
	"zkperf/internal/curve"
	"zkperf/internal/ff"
	"zkperf/internal/groth16"
	"zkperf/internal/provesvc"
	"zkperf/internal/telemetry"

	"math/bits"

	"zkperf/internal/pairing"
	"zkperf/internal/plonk"
	"zkperf/internal/poly"
	"zkperf/internal/rns"
	"zkperf/internal/witness"
)

var (
	suiteOnce sync.Once
	suite     *core.Suite
)

// benchSuite lazily builds one shared suite; the first bench that touches
// a (curve, size) pays its profiling cost, the rest hit the cache.
func benchSuite() *core.Suite {
	suiteOnce.Do(func() { suite = core.NewSuite(core.QuickConfig()) })
	return suite
}

// ---------- one benchmark per paper artifact ----------

// BenchmarkExecTimeBreakdown regenerates the §IV-B execution-time shares
// (paper: setup 76.1%, proving 13.4%).
func BenchmarkExecTimeBreakdown(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		if _, err := s.ExecTimeBreakdown(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4TopDown regenerates the top-down analysis of Fig. 4.
func BenchmarkFig4TopDown(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig4TopDown(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5LoadsStores regenerates the loads/stores bands of Fig. 5.
func BenchmarkFig5LoadsStores(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig5LoadsStores(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2MPKI regenerates the LLC MPKI table (Table II).
func BenchmarkTable2MPKI(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		if _, err := s.Table2MPKI(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3Bandwidth regenerates the max-bandwidth table (Table III).
func BenchmarkTable3Bandwidth(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		if _, err := s.Table3Bandwidth(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4HotFunctions regenerates the hot-function table (Table IV).
func BenchmarkTable4HotFunctions(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		if _, err := s.Table4HotFunctions(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable5OpcodeMix regenerates the opcode-mix table (Table V).
func BenchmarkTable5OpcodeMix(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		if _, err := s.Table5OpcodeMix(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6StrongScaling regenerates the strong-scaling curves (Fig. 6).
func BenchmarkFig6StrongScaling(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig6StrongScaling(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7WeakScaling regenerates the weak-scaling curves (Fig. 7).
func BenchmarkFig7WeakScaling(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig7WeakScaling(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable6SerialParallel regenerates the Amdahl/Gustafson fits
// (Table VI).
func BenchmarkTable6SerialParallel(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		if _, err := s.Table6SerialParallel(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------- kernel microbenchmarks ----------

func BenchmarkFieldMulBN254(b *testing.B) {
	fr := ff.NewBN254Fr()
	rng := ff.NewRNG(1)
	var x, y, z ff.Element
	fr.Random(&x, rng)
	fr.Random(&y, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fr.Mul(&z, &x, &y)
	}
}

func BenchmarkFieldMulBLS12381Fp(b *testing.B) {
	fp := ff.NewBLS12381Fp()
	rng := ff.NewRNG(1)
	var x, y, z ff.Element
	fp.Random(&x, rng)
	fp.Random(&y, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fp.Mul(&z, &x, &y)
	}
}

func BenchmarkFieldInverse(b *testing.B) {
	fr := ff.NewBN254Fr()
	rng := ff.NewRNG(1)
	var x, z ff.Element
	fr.RandomNonZero(&x, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fr.Inverse(&z, &x)
	}
}

func msmInput(c *curve.Curve, n int) ([]curve.G1Affine, []ff.Element) {
	rng := ff.NewRNG(7)
	points := make([]curve.G1Affine, n)
	scalars := make([]ff.Element, n)
	var g, p curve.G1Jac
	c.G1FromAffine(&g, &c.G1Gen)
	for i := range points {
		var k ff.Element
		c.Fr.Random(&k, rng)
		c.G1ScalarMul(&p, &g, &k)
		c.G1ToAffine(&points[i], &p)
		c.Fr.Random(&scalars[i], rng)
	}
	return points, scalars
}

func BenchmarkMSM1024(b *testing.B) {
	c := curve.NewBN254()
	points, scalars := msmInput(c, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.G1MSM(points, scalars, 1)
	}
}

func BenchmarkNTT4096(b *testing.B) {
	fr := ff.NewBN254Fr()
	d, err := poly.NewDomain(fr, 4096)
	if err != nil {
		b.Fatal(err)
	}
	rng := ff.NewRNG(3)
	a := make([]ff.Element, d.N)
	for i := range a {
		fr.Random(&a[i], rng)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.NTT(a)
	}
}

func BenchmarkPairing(b *testing.B) {
	eng := groth16.NewEngine(curve.NewBN254())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = eng.Pair.Pair(&eng.Curve.G1Gen, &eng.Curve.G2Gen)
	}
}

func BenchmarkGroth16Prove1024(b *testing.B) {
	c := curve.NewBN254()
	eng := groth16.NewEngine(c)
	sys, prog, err := circuit.CompileSource(c.Fr, circuit.ExponentiateSource(1024))
	if err != nil {
		b.Fatal(err)
	}
	rng := ff.NewRNG(5)
	pk, _, err := eng.Setup(sys, rng)
	if err != nil {
		b.Fatal(err)
	}
	var x ff.Element
	c.Fr.SetUint64(&x, 3)
	w, err := witness.Solve(sys, prog, witness.Assignment{"x": x})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Prove(sys, pk, w, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompile4096(b *testing.B) {
	fr := ff.NewBN254Fr()
	src := circuit.ExponentiateSource(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := circuit.CompileSource(fr, src); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------- ablation benchmarks (DESIGN.md §5) ----------

// BenchmarkAblationMSM compares Pippenger against the naive per-point
// double-and-add baseline.
func BenchmarkAblationMSM(b *testing.B) {
	c := curve.NewBN254()
	points, scalars := msmInput(c, 256)
	b.Run("pippenger", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = c.G1MSM(points, scalars, 1)
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = c.G1MSMNaive(points, scalars)
		}
	})
}

// BenchmarkAblationPolyMul compares NTT-based against schoolbook
// polynomial multiplication.
func BenchmarkAblationPolyMul(b *testing.B) {
	fr := ff.NewBN254Fr()
	rng := ff.NewRNG(9)
	const n = 512
	p := make([]ff.Element, n)
	q := make([]ff.Element, n)
	for i := range p {
		fr.Random(&p[i], rng)
		fr.Random(&q[i], rng)
	}
	b.Run("ntt", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := poly.Mul(fr, p, q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = poly.MulNaive(fr, p, q)
		}
	})
}

// BenchmarkAblationInverse compares batch inversion against per-element
// inversion (the setup stage's Lagrange denominators).
func BenchmarkAblationInverse(b *testing.B) {
	fr := ff.NewBN254Fr()
	rng := ff.NewRNG(11)
	const n = 1024
	xs := make([]ff.Element, n)
	for i := range xs {
		fr.RandomNonZero(&xs[i], rng)
	}
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tmp := make([]ff.Element, n)
			copy(tmp, xs)
			fr.BatchInverse(tmp)
		}
	})
	b.Run("per-element", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var z ff.Element
			for j := range xs {
				fr.Inverse(&z, &xs[j])
			}
		}
	})
}

// BenchmarkAblationFixedBase compares the precomputed-table fixed-base
// multiplication (setup's workhorse) against plain double-and-add.
func BenchmarkAblationFixedBase(b *testing.B) {
	c := curve.NewBN254()
	tab := c.NewG1Table(&c.G1Gen)
	rng := ff.NewRNG(13)
	var k ff.Element
	c.Fr.Random(&k, rng)
	b.Run("table", func(b *testing.B) {
		var z curve.G1Jac
		for i := 0; i < b.N; i++ {
			tab.Mul(&z, &k)
		}
	})
	b.Run("double-and-add", func(b *testing.B) {
		var g, z curve.G1Jac
		c.G1FromAffine(&g, &c.G1Gen)
		for i := 0; i < b.N; i++ {
			c.G1ScalarMul(&z, &g, &k)
		}
	})
}

// BenchmarkAblationRuntimeOverhead measures the witness stage's profile
// with and without the simulated node.js runtime — quantifying how much of
// the paper's witness-stage behaviour is runtime startup rather than
// constraint solving.
func BenchmarkAblationRuntimeOverhead(b *testing.B) {
	for _, withRuntime := range []bool{true, false} {
		name := "with-runtime"
		if !withRuntime {
			name = "without-runtime"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := core.NewRunner()
				r.IncludeRuntime = withRuntime
				p, err := r.ProfileStage("BN128", 10, core.StageWitness)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(p.WallSeconds()*1000, "ms/stage")
			}
		})
	}
}

// BenchmarkAblationMSMWindow sweeps the effective Pippenger window width
// by varying the instance size around the heuristic's break points.
func BenchmarkAblationMSMWindow(b *testing.B) {
	c := curve.NewBN254()
	for _, n := range []int{64, 512, 4096} {
		points, scalars := msmInput(c, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = c.G1MSM(points, scalars, 1)
			}
		})
	}
}

// BenchmarkPlonkVsGroth16 reproduces the paper's §IV-A rationale for
// choosing Groth16: "the proving time of PlonK is twice as slow compared
// to Groth16". Both schemes prove the same exponentiation statement.
func BenchmarkPlonkVsGroth16(b *testing.B) {
	// e chosen so both schemes fill their power-of-two domains (2048):
	// PLONK pads its wire polynomials to the domain size, so a padded
	// instance would overstate its cost.
	const e = 1500
	c := curve.NewBN254()
	fr := c.Fr

	// Groth16 side.
	g16 := groth16.NewEngine(c)
	sys, prog, err := circuit.CompileSource(fr, circuit.ExponentiateSource(e))
	if err != nil {
		b.Fatal(err)
	}
	rng := ff.NewRNG(21)
	gpk, _, err := g16.Setup(sys, rng)
	if err != nil {
		b.Fatal(err)
	}
	var x ff.Element
	fr.SetUint64(&x, 3)
	w, err := witness.Solve(sys, prog, witness.Assignment{"x": x})
	if err != nil {
		b.Fatal(err)
	}

	// PLONK side: the same statement as a gate circuit.
	pl := plonk.NewEngine(c)
	circ, xv, _ := plonk.ExponentiateCircuit(fr, e)
	ppk, _, err := pl.Setup(circ, ff.NewRNG(22))
	if err != nil {
		b.Fatal(err)
	}
	pw := circ.NewAssignment()
	fr.SetUint64(&pw[xv], 3)
	// Solve forward: w_{i+1} = w_i · x, y = w_last.
	for i := 0; i < circ.NumGates(); i++ {
		if fr.IsOne(&circ.QM[i]) {
			fr.Mul(&pw[circ.C[i]], &pw[circ.A[i]], &pw[circ.B[i]])
		}
	}
	var y ff.Element
	yBig := new(big.Int).Exp(big.NewInt(3), big.NewInt(e), fr.Modulus())
	fr.SetBigInt(&y, yBig)
	pw[0] = y
	public := []ff.Element{y}

	b.Run("groth16-prove", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := g16.Prove(sys, gpk, w, rng); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("plonk-prove", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := pl.Prove(ppk, pw, public); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationCRT compares multiply-chain throughput in the
// Montgomery representation against the residue-number-system (CRT)
// representation the paper's Key Takeaway 3 proposes. The RNS lanes are
// word-sized and independent (no carry chains), which is what a parallel
// accelerator exploits; on a single core the comparison shows the per-lane
// cost structure.
func BenchmarkAblationCRT(b *testing.B) {
	fr := ff.NewBN254Fr()
	rng := ff.NewRNG(31)
	var x, y ff.Element
	fr.Random(&x, rng)
	fr.Random(&y, rng)
	b.Run("montgomery-4limb", func(b *testing.B) {
		var z ff.Element
		fr.Set(&z, &x)
		for i := 0; i < b.N; i++ {
			fr.Mul(&z, &z, &y)
		}
	})
	s, err := rns.NewSystem(9)
	if err != nil {
		b.Fatal(err)
	}
	rx := s.FromBig(fr.BigInt(&x))
	ry := s.FromBig(fr.BigInt(&y))
	b.Run("rns-9lane", func(b *testing.B) {
		z := append(rns.Residues(nil), rx...)
		for i := 0; i < b.N; i++ {
			s.Mul(z, z, ry)
		}
	})
	b.Run("rns-single-lane", func(b *testing.B) {
		// The latency an accelerator lane would see: one word-sized
		// modular multiply.
		z := append(rns.Residues(nil), rx[:1]...)
		one := rns.Residues{ry[0]}
		lane, _ := rns.NewSystem(2)
		_ = lane
		for i := 0; i < b.N; i++ {
			s2 := s
			_ = s2
			z[0] = rnsMulModLane(z[0], one[0], s.Moduli[0])
		}
	})
}

// rnsMulModLane mirrors the per-lane cost of rns.Mul for the ablation.
func rnsMulModLane(a, bb, m uint64) uint64 {
	hi, lo := mulHiLo(a, bb)
	_, rem := div64(hi%m, lo, m)
	return rem
}

func mulHiLo(a, b uint64) (uint64, uint64)    { return bits.Mul64(a, b) }
func div64(hi, lo, m uint64) (uint64, uint64) { return bits.Div64(hi, lo, m) }

// BenchmarkAblationPointCompression measures the zkey-size/time trade-off
// of compressed point serialization — the memory-footprint optimization
// the paper's Key Takeaway 2 points to.
func BenchmarkAblationPointCompression(b *testing.B) {
	c := curve.NewBN254()
	points, _ := msmInput(c, 2048)
	b.Run("uncompressed-write", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if err := c.WriteG1Slice(&buf, points); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(buf.Len()), "bytes")
		}
	})
	b.Run("compressed-write", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if err := c.WriteG1SliceCompressed(&buf, points); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(buf.Len()), "bytes")
		}
	})
	var ubuf, cbuf bytes.Buffer
	if err := c.WriteG1Slice(&ubuf, points); err != nil {
		b.Fatal(err)
	}
	if err := c.WriteG1SliceCompressed(&cbuf, points); err != nil {
		b.Fatal(err)
	}
	b.Run("uncompressed-read", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := c.ReadG1Slice(bytes.NewReader(ubuf.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("compressed-read", func(b *testing.B) {
		// Decompression pays one square root per point: the classic
		// bandwidth-for-compute trade.
		for i := 0; i < b.N; i++ {
			if _, err := c.ReadG1SliceCompressed(bytes.NewReader(cbuf.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkProveService measures warm-cache serving throughput of the
// proving service on the paper's 2^10 exponentiation circuit, sweeping
// the worker count: one prove request per iteration, issued from b.N
// parallel clients. The first request per sub-benchmark pays
// compile+setup; everything after hits the artifact cache, so this
// tracks the steady-state p50/p99 the serving layer can sustain.
func BenchmarkProveService(b *testing.B) {
	src := circuit.ExponentiateSource(1 << 10)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			svc := provesvc.New(
				provesvc.WithWorkers(workers),
				provesvc.WithQueueDepth(1024), // deep enough that clients queue, not shed
				provesvc.WithSeed(1),
			)
			svc.Start()
			defer svc.Shutdown(context.Background())

			c, err := svc.Registry().CurveFor("bn128")
			if err != nil {
				b.Fatal(err)
			}
			var x ff.Element
			c.Fr.SetUint64(&x, 7)
			req := provesvc.ProveRequest{
				Curve:  "bn128",
				Source: src,
				Inputs: witness.Assignment{"x": x},
			}
			// Warm the artifact cache outside the timed region.
			if _, err := svc.Prove(context.Background(), req); err != nil {
				b.Fatal(err)
			}

			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := svc.Prove(context.Background(), req); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.StopTimer()
			st := svc.Stats()
			prove := st.Backends["groth16"].Stages["prove"]
			b.ReportMetric(prove.P50Ms, "p50-ms")
			b.ReportMetric(prove.P99Ms, "p99-ms")
			b.ReportMetric(st.Cache.HitRate, "cache-hit-rate")
		})
	}
}

// BenchmarkTelemetryOverhead prices the telemetry hooks on the groth16
// prove path: the same warm prove with no probe in the context (every
// hook reduces to a nil check) versus with a live probe recording kernel
// spans. The disabled variant is the contract — it must sit within noise
// of the pre-telemetry prove cost; ci.sh runs both so a regression in
// either direction shows up in review.
func BenchmarkTelemetryOverhead(b *testing.B) {
	c := curve.NewBN254()
	eng := groth16.NewEngine(c)
	sys, prog, err := circuit.CompileSource(c.Fr, circuit.ExponentiateSource(1024))
	if err != nil {
		b.Fatal(err)
	}
	rng := ff.NewRNG(5)
	pk, _, err := eng.Setup(sys, rng)
	if err != nil {
		b.Fatal(err)
	}
	var x ff.Element
	c.Fr.SetUint64(&x, 3)
	w, err := witness.Solve(sys, prog, witness.Assignment{"x": x})
	if err != nil {
		b.Fatal(err)
	}

	b.Run("disabled", func(b *testing.B) {
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.ProveCtx(ctx, sys, pk, w, rng); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("enabled", func(b *testing.B) {
		tel := telemetry.New()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			probe := telemetry.NewProbe("bench")
			ctx := telemetry.WithProbe(context.Background(), probe)
			if _, err := eng.ProveCtx(ctx, sys, pk, w, rng); err != nil {
				b.Fatal(err)
			}
			tel.ObserveProbe("groth16", "bn128", probe)
		}
	})
}

// kernelG1Points builds n distinct affine G1 points cheaply (successive
// generator additions + one batch normalization) — large MSM inputs
// would take minutes to generate via per-point scalar multiplication.
func kernelG1Points(c *curve.Curve, n int) []curve.G1Affine {
	jacs := make([]curve.G1Jac, n)
	var acc curve.G1Jac
	c.G1FromAffine(&acc, &c.G1Gen)
	for i := 0; i < n; i++ {
		jacs[i] = acc
		c.G1AddAffine(&acc, &acc, &c.G1Gen)
	}
	out := make([]curve.G1Affine, n)
	c.G1BatchToAffine(out, jacs)
	return out
}

func kernelG2Points(c *curve.Curve, n int) []curve.G2Affine {
	jacs := make([]curve.G2Jac, n)
	var acc curve.G2Jac
	c.G2FromAffine(&acc, &c.G2Gen)
	for i := 0; i < n; i++ {
		jacs[i] = acc
		c.G2AddAffine(&acc, &acc, &c.G2Gen)
	}
	out := make([]curve.G2Affine, n)
	c.G2BatchToAffine(out, jacs)
	return out
}

func kernelScalars(fr *ff.Field, n int) []ff.Element {
	rng := ff.NewRNG(17)
	out := make([]ff.Element, n)
	for i := range out {
		fr.Random(&out[i], rng)
	}
	return out
}

// BenchmarkKernels tracks the accelerator-target kernels (the NTT and the
// MSM, per the paper's hardware discussion) plus the verifier-side pairing
// primitives and the persisted fixed-base table path, on both curves, at
// proving-scale sizes and several thread counts. ci.sh runs the 2^10 and
// pairing slices as a smoke test; the larger sizes back the README's
// kernel performance table.
func BenchmarkKernels(b *testing.B) {
	threadCounts := []int{1, 4, 8}
	for _, c := range []*curve.Curve{curve.NewBN254(), curve.NewBLS12381()} {
		fr := c.Fr
		for _, logN := range []int{10, 14, 16} {
			n := 1 << logN
			d, err := poly.NewDomain(fr, n)
			if err != nil {
				b.Fatal(err)
			}
			a := kernelScalars(fr, n)
			buf := make([]ff.Element, n)
			for _, th := range threadCounts {
				b.Run(fmt.Sprintf("ntt/curve=%s/n=2^%d/threads=%d", c.Name, logN, th), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						copy(buf, a)
						if err := d.NTTCtx(context.Background(), buf, th); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
		for _, logN := range []int{10, 14, 16} {
			n := 1 << logN
			points := kernelG1Points(c, n)
			scalars := kernelScalars(fr, n)
			for _, th := range threadCounts {
				b.Run(fmt.Sprintf("msm-g1/curve=%s/n=2^%d/threads=%d", c.Name, logN, th), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						_ = c.G1MSM(points, scalars, th)
					}
				})
			}
		}
		for _, logN := range []int{10, 14, 16} {
			n := 1 << logN
			points := kernelG2Points(c, n)
			scalars := kernelScalars(fr, n)
			for _, th := range threadCounts {
				b.Run(fmt.Sprintf("msm-g2/curve=%s/n=2^%d/threads=%d", c.Name, logN, th), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						_ = c.G2MSM(points, scalars, th)
					}
				})
			}
		}
		tab := c.G1GenTable()
		for _, logN := range []int{10, 14, 16} {
			scalars := kernelScalars(fr, 1<<logN)
			for _, th := range threadCounts {
				b.Run(fmt.Sprintf("tablemul-g1/curve=%s/n=2^%d/threads=%d", c.Name, logN, th), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						if _, err := tab.MulBatchCtx(context.Background(), scalars, th); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
		eng := pairing.NewEngine(c)
		f := eng.MillerLoop(&c.G1Gen, &c.G2Gen)
		b.Run(fmt.Sprintf("pairing/curve=%s/op=miller", c.Name), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = eng.MillerLoop(&c.G1Gen, &c.G2Gen)
			}
		})
		b.Run(fmt.Sprintf("pairing/curve=%s/op=finalexp", c.Name), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = eng.FinalExp(&f)
			}
		})
		b.Run(fmt.Sprintf("pairing/curve=%s/op=pair", c.Name), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = eng.Pair(&c.G1Gen, &c.G2Gen)
			}
		})
	}
}

// BenchmarkVerifyBatch measures the folded batch verify against the
// per-proof baseline on BN254: one random-linear-combination
// multi-pairing (N+3 Miller loops, one shared final exponentiation)
// versus N independent 4-pairing checks. The us/proof metric is the
// amortized per-proof cost — the acceptance target is ≥3× lower at
// N=64 than N=1. ci.sh runs the n=1 and n=64 slices as a smoke test.
func BenchmarkVerifyBatch(b *testing.B) {
	const maxN = 256
	c := curve.NewBN254()
	eng := groth16.NewEngine(c)
	sys, prog, err := circuit.CompileSource(c.Fr, circuit.ExponentiateSource(64))
	if err != nil {
		b.Fatal(err)
	}
	rng := ff.NewRNG(23)
	pk, vk, err := eng.Setup(sys, rng)
	if err != nil {
		b.Fatal(err)
	}
	proofs := make([]*groth16.Proof, maxN)
	publics := make([][]ff.Element, maxN)
	for i := 0; i < maxN; i++ {
		var x ff.Element
		c.Fr.SetUint64(&x, uint64(i+2))
		w, err := witness.Solve(sys, prog, witness.Assignment{"x": x})
		if err != nil {
			b.Fatal(err)
		}
		if proofs[i], err = eng.Prove(sys, pk, w, rng); err != nil {
			b.Fatal(err)
		}
		publics[i] = w.Public
	}
	ctx := context.Background()
	for _, n := range []int{1, 8, 64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				results, err := eng.VerifyBatchCtx(ctx, vk, proofs[:n], publics[:n])
				if err != nil {
					b.Fatal(err)
				}
				for j, v := range results {
					if v != nil {
						b.Fatalf("proof %d rejected: %v", j, v)
					}
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*n)/1e3, "us/proof")
		})
	}
}

// BenchmarkBackends is the head-to-head backend sweep on the paper's 2^10
// exponentiation circuit: the same compiled R1CS proved under Groth16 and
// PLONK through the unified backend interface. Setup runs once per
// backend outside the timed region; each iteration is witness-solve +
// prove, with verify time and proof size reported as metrics — the
// three-way trade (prove time / proof size / universal vs circuit-specific
// setup) the comparative literature centers on.
func BenchmarkBackends(b *testing.B) {
	const logN = 10
	src := circuit.ExponentiateSource(1 << logN)
	c := curve.NewCurve("bn128")
	sys, prog, err := circuit.CompileSource(c.Fr, src)
	if err != nil {
		b.Fatal(err)
	}
	var x ff.Element
	c.Fr.SetUint64(&x, 7)
	assign := witness.Assignment{"x": x}

	for _, name := range backend.Names() {
		b.Run(fmt.Sprintf("%s/n=2^%d", name, logN), func(b *testing.B) {
			bk, err := backend.New(name, c, 0)
			if err != nil {
				b.Fatal(err)
			}
			rng := ff.NewRNG(1)
			pk, vk, err := bk.Setup(context.Background(), sys, rng)
			if err != nil {
				b.Fatal(err)
			}
			w, err := witness.Solve(sys, prog, assign)
			if err != nil {
				b.Fatal(err)
			}

			var proof backend.Proof
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if proof, err = bk.Prove(context.Background(), sys, pk, w, rng); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()

			if err := bk.Verify(context.Background(), vk, proof, w.Public); err != nil {
				b.Fatal(err)
			}
			var buf bytes.Buffer
			if err := proof.Encode(&buf); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(buf.Len()), "proof-bytes")
		})
	}
}
