// Command zkgateway fronts a cluster of zkserve nodes with a single
// /v1 endpoint. Requests shard across nodes by consistent-hashing the
// circuit key (curve, backend, circuit source), so every circuit lands
// on the node that already holds its compiled registry entry and setup
// artifacts — the cluster-scale version of the cache-affinity argument
// zkserve makes within one process.
//
//	zkgateway -addr :8089 \
//	    -nodes a=http://10.0.0.1:8090,b=http://10.0.0.2:8090
//
// -nodes takes comma-separated name=url pairs (bare URLs get names
// node0, node1, …). A background prober polls each node's /v1/healthz
// every -probe-every; -fail-threshold consecutive transport failures
// mark a node unhealthy and its shard fails over to the next ring node
// until a probe succeeds again.
//
// The gateway serves the node API unchanged (zkcli points at it as if
// it were one zkserve), plus:
//
//	GET /v1/stats    cluster rollup: gateway counters, per-node health
//	                 and scraped node stats, cross-node aggregate
//	GET /v1/metrics  gateway telemetry (zkgw_* series, per-node labels)
//
// Async job IDs returned through the gateway carry an "@<node>" suffix
// so polls and cancels route to the owning node with no gateway state.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"zkperf/internal/cluster"
	"zkperf/internal/provesvc"
	"zkperf/internal/telemetry"
)

func main() {
	addr := flag.String("addr", ":8089", "listen address")
	nodesFlag := flag.String("nodes", "", "comma-separated zkserve nodes as name=url (or bare urls)")
	replicas := flag.Int("replicas", 0, "virtual ring points per node (default 64)")
	probeEvery := flag.Duration("probe-every", cluster.DefaultProbeEvery, "health-probe interval")
	failThreshold := flag.Int("fail-threshold", cluster.DefaultFailThreshold, "consecutive transport failures that mark a node unhealthy")
	cooldown := flag.Duration("cooldown", cluster.DefaultCooldown, "unhealthy-node cooldown")
	drain := flag.Duration("drain", 30*time.Second, "shutdown drain deadline for in-flight requests")
	telemetryOn := flag.Bool("telemetry", true, "serve gateway metrics at /v1/metrics")
	accessLog := flag.Bool("access-log", true, "log one line per HTTP request")
	flag.Parse()

	nodes, err := parseNodes(*nodesFlag)
	if err != nil {
		log.Fatalf("zkgateway: -nodes: %v", err)
	}
	var tel *telemetry.Telemetry
	if *telemetryOn {
		tel = telemetry.New()
	}
	gw, err := cluster.New(cluster.Config{
		Nodes:         nodes,
		Replicas:      *replicas,
		ProbeEvery:    *probeEvery,
		FailThreshold: *failThreshold,
		Cooldown:      *cooldown,
		Telemetry:     tel,
	})
	if err != nil {
		log.Fatalf("zkgateway: %v", err)
	}
	gw.Start()

	handler := gw.Handler()
	if *accessLog {
		handler = provesvc.LogRequests(handler, nil)
	}
	// Same edge-timeout posture as zkserve: bound header/body reads and
	// idle keep-alives, but no WriteTimeout — a proxied prove response is
	// bounded by the node-side job deadline, not a connection timer.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	names := make([]string, len(nodes))
	for i, n := range nodes {
		names[i] = fmt.Sprintf("%s=%s", n.Name, n.URL)
	}
	log.Printf("zkgateway listening on %s, routing to %d nodes: %s",
		*addr, len(nodes), strings.Join(names, " "))

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		log.Fatalf("zkgateway: %v", err)
	case <-ctx.Done():
	}

	log.Printf("zkgateway: draining (deadline %v)…", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("zkgateway: http shutdown: %v", err)
	}
	if err := gw.Shutdown(drainCtx); err != nil {
		log.Printf("zkgateway: %v", err)
		os.Exit(1)
	}
}

// parseNodes parses the -nodes flag: comma-separated name=url pairs,
// or bare URLs that get positional names.
func parseNodes(s string) ([]cluster.NodeConfig, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("at least one node is required")
	}
	var out []cluster.NodeConfig
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		nc := cluster.NodeConfig{}
		if eq := strings.Index(part, "="); eq >= 0 && !strings.Contains(part[:eq], "/") {
			nc.Name, nc.URL = part[:eq], part[eq+1:]
		} else {
			nc.Name, nc.URL = fmt.Sprintf("node%d", len(out)), part
		}
		if !strings.Contains(nc.URL, "://") {
			nc.URL = "http://" + nc.URL
		}
		out = append(out, nc)
	}
	return out, nil
}
