// Command zkserve runs the proving service as an HTTP server — the
// long-lived deployment shape that amortizes circuit compilation and
// trusted setup across many prove/verify requests.
//
//	zkserve -addr :8090 -workers 4 -queue 256 -threads 1 -timeout 30s
//
// Endpoints (JSON bodies; see internal/provesvc):
//
//	POST /v1/prove        prove a circuit ("backend" picks groth16/plonk)
//	POST /v1/prove/batch  prove several requests in one call
//	POST /v1/verify       check a proof against a circuit's verifying key
//	GET  /v1/stats        counters, cache hit rate, per-stage and
//	                      per-backend latencies
//	GET  /v1/healthz      200 while accepting work, 503 while draining
//
// The legacy unversioned paths answer 308 redirects to /v1.
//
// On SIGINT/SIGTERM the server stops intake, drains in-flight jobs until
// -drain expires, and logs what was dropped.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"zkperf/internal/provesvc"
)

func main() {
	addr := flag.String("addr", ":8090", "listen address")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent proving workers")
	queue := flag.Int("queue", 256, "job queue depth (beyond this, requests get 429)")
	threads := flag.Int("threads", 1, "engine threads inside one prove/setup")
	timeout := flag.Duration("timeout", 60*time.Second, "default per-job deadline (0 disables)")
	drain := flag.Duration("drain", 30*time.Second, "shutdown drain deadline for in-flight jobs")
	seed := flag.Uint64("seed", uint64(time.Now().UnixNano()), "RNG seed (pin for reproducible runs)")
	backendsFlag := flag.String("backends", "", "comma-separated proving backends to serve (default: all)")
	flag.Parse()

	opts := []provesvc.Option{
		provesvc.WithWorkers(*workers),
		provesvc.WithQueueDepth(*queue),
		provesvc.WithProveThreads(*threads),
		provesvc.WithDefaultTimeout(*timeout),
		provesvc.WithSeed(*seed),
	}
	if *backendsFlag != "" {
		var names []string
		for _, name := range strings.Split(*backendsFlag, ",") {
			if name = strings.TrimSpace(name); name != "" {
				names = append(names, name)
			}
		}
		opts = append(opts, provesvc.WithBackends(names...))
	}
	svc := provesvc.New(opts...)
	svc.Start()

	srv := &http.Server{Addr: *addr, Handler: provesvc.NewHandler(svc)}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("zkserve listening on %s (%d workers, queue %d, %d threads/job, backends %v)",
		*addr, *workers, *queue, *threads, svc.Backends())
	log.Printf("zkserve: serving /v1/prove /v1/prove/batch /v1/verify /v1/stats /v1/healthz (legacy paths 308-redirect)")

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		log.Fatalf("zkserve: %v", err)
	case <-ctx.Done():
	}

	log.Printf("zkserve: draining (deadline %v)…", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Stop accepting connections first, then drain the job queue.
	if err := srv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("zkserve: http shutdown: %v", err)
	}
	rep, err := svc.Shutdown(drainCtx)
	if err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("zkserve: drain: %v", err)
	}
	if rep != nil {
		log.Printf("zkserve: drained %d in-flight, dropped %d queued, force-cancelled %d",
			rep.Drained, rep.Dropped, rep.Forced)
		if rep.Dropped > 0 || rep.Forced > 0 {
			fmt.Fprintf(os.Stderr, "zkserve: %d jobs did not complete\n", rep.Dropped+rep.Forced)
			os.Exit(1)
		}
	}
}
