// Command zkserve runs the proving service as an HTTP server — the
// long-lived deployment shape that amortizes circuit compilation and
// trusted setup across many prove/verify requests.
//
//	zkserve -addr :8090 -workers 4 -queue 256 -threads 1 -timeout 30s \
//	        -artifact-dir /var/lib/zkserve
//
// -artifact-dir persists setup artifacts crash-safely so restarts skip
// the trusted setup; -job-journal-dir does the same for async jobs — a
// checksummed WAL replays on boot, so accepted job IDs survive a crash,
// interrupted jobs re-execute, and Idempotency-Key dedup holds across
// restarts; -max-timeout caps per-request timeout_ms overrides;
// -breaker-threshold/-breaker-cooldown size the per-circuit breaker that
// sheds poisoned circuits with 503 circuit_open.
//
// Endpoints (JSON bodies; see internal/provesvc):
//
//	POST /v1/prove         prove a circuit ("backend" picks groth16/plonk)
//	POST /v1/prove/batch   prove several items in one call
//	POST /v1/verify        check a proof against a circuit's verifying key
//	POST /v1/verify/batch  check many proofs; same-circuit groth16 items
//	                       fold into one multi-pairing check
//	POST /v1/jobs          submit a prove/verify asynchronously → 202 + job
//	                       ID; {"items":[…]} submits a batch
//	GET  /v1/jobs/{id}     poll an async job (DELETE cancels it); finished
//	                       jobs are retained for -job-ttl
//	GET  /v1/stats         counters, cache hit rate, per-stage and
//	                       per-backend latencies, async job state
//	GET  /v1/metrics       Prometheus text exposition of the telemetry
//	                       registry (404 with -telemetry=false)
//	GET  /v1/healthz       200 while accepting work, 503 while draining
//
// -verify-coalesce-window/-verify-coalesce-max fold concurrent single
// /v1/verify calls for the same circuit into batched pairing checks: a
// request waits up to the window for company and a pending group flushes
// once it holds max requests. Off by default — lone requests would pay
// the window as pure latency.
//
// -sched (on by default) enables workload-aware scheduling: circuits
// whose decayed arrival rate crosses -sched-hot-rate get -sched-reserve
// dedicated workers each (at most -sched-max-hot circuits), everything
// else shares the residual pool, and the -sched-budget kernel thread
// budget is split jobs × threads from live queue depth. The live
// classification is the "sched" block of /v1/stats; cmd/zkload measures
// the effect.
//
// The legacy unversioned paths answer 410 with envelope code "gone".
// Every response carries an X-Request-Id header (the client's, when
// sane) that also appears in the access log.
//
// -debug-addr starts a second listener serving net/http/pprof (and the
// same /v1/metrics) for profiling; it is off by default so production
// deployments opt in explicitly.
//
// On SIGINT/SIGTERM the server stops intake, drains in-flight jobs until
// -drain expires, and logs what was dropped.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"zkperf/internal/faultinject"
	"zkperf/internal/provesvc"
	"zkperf/internal/telemetry"
)

func main() {
	addr := flag.String("addr", ":8090", "listen address")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent proving workers")
	queue := flag.Int("queue", 256, "job queue depth (beyond this, requests get 429)")
	threads := flag.Int("threads", 1, "engine threads inside one prove/setup")
	timeout := flag.Duration("timeout", 60*time.Second, "default per-job deadline (0 disables)")
	maxTimeout := flag.Duration("max-timeout", 0, "ceiling on per-request timeout_ms overrides (0: no ceiling)")
	drain := flag.Duration("drain", 30*time.Second, "shutdown drain deadline for in-flight jobs")
	seed := flag.Uint64("seed", uint64(time.Now().UnixNano()), "RNG seed (pin for reproducible runs)")
	backendsFlag := flag.String("backends", "", "comma-separated proving backends to serve (default: all)")
	artifactDir := flag.String("artifact-dir", "", "directory for crash-safe setup-artifact persistence (empty disables)")
	maxBody := flag.Int64("max-body", provesvc.DefaultMaxBodyBytes, "request body size limit in bytes for /v1 prove and verify")
	breakerN := flag.Int("breaker-threshold", provesvc.DefaultBreakerThreshold, "consecutive per-circuit failures that open its breaker (0 disables)")
	breakerCool := flag.Duration("breaker-cooldown", provesvc.DefaultBreakerCooldown, "breaker open-state cooldown before a probe is admitted")
	jobTTL := flag.Duration("job-ttl", 5*time.Minute, "retention of finished async jobs (/v1/jobs) before eviction")
	jobMax := flag.Int("job-max", 1024, "cap on queued+running async jobs (beyond this, submits get 429)")
	jobJournalDir := flag.String("job-journal-dir", "", "directory for the crash-safe async job journal: accepted jobs survive and replay across restarts (empty disables)")
	verifyWindow := flag.Duration("verify-coalesce-window", 0, "max wait to coalesce concurrent single verifies of one circuit into a batched pairing check (0 disables)")
	verifyMax := flag.Int("verify-coalesce-max", 32, "flush a coalesced verify group once it holds this many requests")
	schedOn := flag.Bool("sched", true, "workload-aware scheduling: dedicated workers for hot circuits plus a dynamic intra/inter-job thread split")
	schedBudget := flag.Int("sched-budget", 0, "kernel thread budget the scheduler splits across in-flight jobs (0: GOMAXPROCS)")
	schedHotRate := flag.Float64("sched-hot-rate", 0.5, "decayed arrival rate (req/s) at which a circuit is classified hot")
	schedMaxHot := flag.Int("sched-max-hot", 0, "cap on simultaneously hot circuits (0: as many as the pool can reserve for)")
	schedReserve := flag.Int("sched-reserve", 1, "dedicated workers per hot circuit")
	telemetryOn := flag.Bool("telemetry", true, "always-on telemetry (stage/kernel metrics at /v1/metrics)")
	debugAddr := flag.String("debug-addr", "", "listen address for the pprof debug server (empty disables)")
	accessLog := flag.Bool("access-log", true, "log one line per HTTP request")
	// -fault is deliberately undocumented in the usage line: it arms the
	// fault-injection harness (internal/faultinject) for chaos drills and
	// integration tests, never for production traffic.
	faultSpec := flag.String("fault", "", "")
	flag.Parse()

	if *faultSpec != "" {
		for _, spec := range strings.Split(*faultSpec, ",") {
			if _, err := faultinject.ParseSpec(strings.TrimSpace(spec)); err != nil {
				log.Fatalf("zkserve: -fault: %v", err)
			}
		}
		log.Printf("zkserve: FAULT INJECTION ARMED (%s) — not for production", *faultSpec)
	}

	opts := []provesvc.Option{
		provesvc.WithWorkers(*workers),
		provesvc.WithQueueDepth(*queue),
		provesvc.WithProveThreads(*threads),
		provesvc.WithDefaultTimeout(*timeout),
		provesvc.WithMaxTimeout(*maxTimeout),
		provesvc.WithMaxBodyBytes(*maxBody),
		provesvc.WithBreaker(*breakerN, *breakerCool),
		provesvc.WithJobTTL(*jobTTL, 0),
		provesvc.WithJobMaxActive(*jobMax),
		provesvc.WithSeed(*seed),
		provesvc.WithWorkloadSched(provesvc.WorkloadConfig{
			Enabled:       *schedOn,
			ThreadBudget:  *schedBudget,
			HotMinRate:    *schedHotRate,
			MaxHot:        *schedMaxHot,
			ReservePerHot: *schedReserve,
		}),
	}
	if *artifactDir != "" {
		opts = append(opts, provesvc.WithArtifactDir(*artifactDir))
	}
	if *jobJournalDir != "" {
		opts = append(opts, provesvc.WithJobJournal(*jobJournalDir))
	}
	if *verifyWindow > 0 {
		opts = append(opts, provesvc.WithVerifyCoalesce(*verifyWindow, *verifyMax))
	}
	if !*telemetryOn {
		opts = append(opts, provesvc.WithTelemetry(nil))
	}
	if *backendsFlag != "" {
		var names []string
		for _, name := range strings.Split(*backendsFlag, ",") {
			if name = strings.TrimSpace(name); name != "" {
				names = append(names, name)
			}
		}
		opts = append(opts, provesvc.WithBackends(names...))
	}
	svc := provesvc.New(opts...)
	if err := svc.ArtifactDirError(); err != nil {
		// Persistence failing to initialize is fatal at boot: silently
		// re-running every trusted setup after a restart is exactly the
		// surprise -artifact-dir exists to prevent.
		log.Fatalf("zkserve: -artifact-dir: %v", err)
	}
	if err := svc.JobJournalError(); err != nil {
		// Same contract as -artifact-dir: an operator who asked for durable
		// jobs should not silently run without them.
		log.Fatalf("zkserve: -job-journal-dir: %v", err)
	}
	svc.Start()

	handler := provesvc.NewHandler(svc)
	if *accessLog {
		handler = provesvc.LogRequests(handler, nil)
	}
	// Edge timeouts: header/body reads and idle keep-alives are bounded so
	// a slowloris client cannot pin a connection, but there is deliberately
	// no WriteTimeout — a prove response legitimately takes minutes and is
	// bounded by the job deadline instead.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("zkserve listening on %s (%d workers, queue %d, %d threads/job, backends %v)",
		*addr, *workers, *queue, *threads, svc.Backends())
	log.Printf("zkserve: serving /v1/prove /v1/prove/batch /v1/verify /v1/verify/batch /v1/jobs /v1/stats /v1/metrics /v1/healthz (legacy paths answer 410 gone)")
	if *verifyWindow > 0 {
		log.Printf("zkserve: verify coalescing on (window %v, max %d)", *verifyWindow, *verifyMax)
	}
	if *schedOn {
		log.Printf("zkserve: workload-aware scheduling on (hot-rate %.2f/s, reserve %d/hot, budget %d threads)",
			*schedHotRate, *schedReserve, *schedBudget)
	}

	// The debug listener is separate from the serving port so pprof is
	// never exposed by accident: it only exists when -debug-addr is set.
	var dbg *http.Server
	if *debugAddr != "" {
		dbg = &http.Server{
			Addr:              *debugAddr,
			Handler:           debugMux(svc.Telemetry()),
			ReadHeaderTimeout: 10 * time.Second,
			ReadTimeout:       time.Minute,
			IdleTimeout:       2 * time.Minute,
		}
		go func() {
			if err := dbg.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
				log.Printf("zkserve: debug server: %v", err)
			}
		}()
		log.Printf("zkserve: pprof debug server on %s (/debug/pprof/, /v1/metrics)", *debugAddr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		log.Fatalf("zkserve: %v", err)
	case <-ctx.Done():
	}

	log.Printf("zkserve: draining (deadline %v)…", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Stop accepting connections first, then drain the job queue.
	if err := srv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("zkserve: http shutdown: %v", err)
	}
	if dbg != nil {
		dbg.Close()
	}
	rep, err := svc.Shutdown(drainCtx)
	if err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("zkserve: drain: %v", err)
	}
	if rep != nil {
		log.Printf("zkserve: drained %d in-flight, dropped %d queued, force-cancelled %d",
			rep.Drained, rep.Dropped, rep.Forced)
		if rep.Dropped > 0 || rep.Forced > 0 {
			fmt.Fprintf(os.Stderr, "zkserve: %d jobs did not complete\n", rep.Dropped+rep.Forced)
			os.Exit(1)
		}
	}
}

// debugMux builds the opt-in debug surface: the full net/http/pprof
// suite plus the same Prometheus exposition the serving port offers, so
// a scraper pointed at the debug port sees profiles and metrics side by
// side.
func debugMux(tel *telemetry.Telemetry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		reg := tel.Registry()
		if reg == nil {
			http.Error(w, "telemetry disabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WriteText(w); err != nil {
			log.Printf("zkserve: writing metrics: %v", err)
		}
	})
	return mux
}
