// Command zkserve runs the proving service as an HTTP server — the
// long-lived deployment shape that amortizes circuit compilation and
// trusted setup across many prove/verify requests.
//
//	zkserve -addr :8090 -workers 4 -queue 256 -threads 1 -timeout 30s
//
// Endpoints (JSON bodies; see internal/provesvc):
//
//	POST /prove        prove a circuit with the given inputs
//	POST /prove/batch  prove several requests in one call
//	POST /verify       check a proof against a circuit's verifying key
//	GET  /stats        counters, cache hit rate, per-stage latencies
//	GET  /healthz      200 while accepting work, 503 while draining
//
// On SIGINT/SIGTERM the server stops intake, drains in-flight jobs until
// -drain expires, and logs what was dropped.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"zkperf/internal/provesvc"
)

func main() {
	addr := flag.String("addr", ":8090", "listen address")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent proving workers")
	queue := flag.Int("queue", 256, "job queue depth (beyond this, requests get 429)")
	threads := flag.Int("threads", 1, "engine threads inside one prove/setup")
	timeout := flag.Duration("timeout", 60*time.Second, "default per-job deadline (0 disables)")
	drain := flag.Duration("drain", 30*time.Second, "shutdown drain deadline for in-flight jobs")
	seed := flag.Uint64("seed", uint64(time.Now().UnixNano()), "RNG seed (pin for reproducible runs)")
	flag.Parse()

	svc := provesvc.New(provesvc.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		ProveThreads:   *threads,
		DefaultTimeout: *timeout,
		Seed:           *seed,
	})
	svc.Start()

	srv := &http.Server{Addr: *addr, Handler: provesvc.NewHandler(svc)}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("zkserve listening on %s (%d workers, queue %d, %d threads/job)",
		*addr, *workers, *queue, *threads)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		log.Fatalf("zkserve: %v", err)
	case <-ctx.Done():
	}

	log.Printf("zkserve: draining (deadline %v)…", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Stop accepting connections first, then drain the job queue.
	if err := srv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("zkserve: http shutdown: %v", err)
	}
	rep, err := svc.Shutdown(drainCtx)
	if err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("zkserve: drain: %v", err)
	}
	if rep != nil {
		log.Printf("zkserve: drained %d in-flight, dropped %d queued, force-cancelled %d",
			rep.Drained, rep.Dropped, rep.Forced)
		if rep.Dropped > 0 || rep.Forced > 0 {
			fmt.Fprintf(os.Stderr, "zkserve: %d jobs did not complete\n", rep.Dropped+rep.Forced)
			os.Exit(1)
		}
	}
}
