package main

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"time"
)

// Remote mode: `zkcli prove -addr http://host:8090 …` and `zkcli verify
// -addr …` drive a running zkserve instead of the local file pipeline.
// The client honours the server's error envelope: responses whose
// {"code","message","retryable"} envelope says retryable=true (queue
// full, draining, circuit breaker cooldown, deadline) are retried with
// jittered exponential backoff, everything else fails immediately.

// wireError mirrors the server's error envelope.
type wireError struct {
	Code      string `json:"code"`
	Message   string `json:"message"`
	Retryable bool   `json:"retryable"`
}

func (e *wireError) Error() string {
	return fmt.Sprintf("%s: %s (retryable=%v)", e.Code, e.Message, e.Retryable)
}

// retryJitter computes the sleep before retry attempt n (0-based): the
// base doubles each attempt and the result is drawn uniformly from
// [d/2, d), so a burst of shed clients does not come back in lockstep.
// A base of zero (-retry-backoff 0) means immediate retries; the 1m cap
// only applies to oversized backoffs and shift overflow.
func retryJitter(base time.Duration, attempt int, rng *rand.Rand) time.Duration {
	if base <= 0 {
		return 0
	}
	d := base << uint(attempt)
	if d <= 0 || d > time.Minute {
		d = time.Minute
	}
	return d/2 + time.Duration(rng.Int63n(int64(d/2)+1))
}

// postWithRetry posts payload to url, retrying network errors and
// envelope-retryable failures up to retries extra attempts. The last
// error is returned verbatim (as *wireError for envelope failures, so
// callers and tests can inspect the code).
func postWithRetry(client *http.Client, url string, payload []byte, retries int, backoff time.Duration) ([]byte, error) {
	if client == nil {
		client = http.DefaultClient
	}
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	var lastErr error
	for attempt := 0; ; attempt++ {
		data, retryable, err := postOnce(client, url, payload)
		if err == nil {
			return data, nil
		}
		lastErr = err
		if !retryable || attempt >= retries {
			return nil, lastErr
		}
		d := retryJitter(backoff, attempt, rng)
		fmt.Fprintf(os.Stderr, "zkcli: retryable failure (%v), retrying in %v [%d/%d]\n",
			err, d.Round(time.Millisecond), attempt+1, retries)
		time.Sleep(d)
	}
}

func postOnce(client *http.Client, url string, payload []byte) (data []byte, retryable bool, err error) {
	resp, err := client.Post(url, "application/json", bytes.NewReader(payload))
	if err != nil {
		// Network-level failures (connection refused, reset) are always
		// worth a retry: the server may be restarting behind us.
		return nil, true, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, true, err
	}
	if resp.StatusCode == http.StatusOK {
		return body, false, nil
	}
	env := &wireError{}
	if jsonErr := json.Unmarshal(body, env); jsonErr != nil || env.Code == "" {
		return nil, false, fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	return nil, env.Retryable, env
}

// proveRemote posts one prove request and writes the returned proof
// bytes where the local pipeline would have.
func proveRemote(addr, curveName, backendName, circuitPath, proofPath string, inputs inputFlags, timeout time.Duration, retries int, backoff time.Duration) error {
	src, err := os.ReadFile(circuitPath)
	if err != nil {
		return err
	}
	in := make(map[string]string, len(inputs))
	for _, pair := range inputs {
		name, val, ok := strings.Cut(pair, "=")
		if !ok {
			return fmt.Errorf("malformed -input %q (want name=value)", pair)
		}
		in[name] = val
	}
	payload, err := json.Marshal(map[string]any{
		"curve":      curveName,
		"backend":    backendName,
		"circuit":    string(src),
		"inputs":     in,
		"timeout_ms": timeout.Milliseconds(),
	})
	if err != nil {
		return err
	}
	t0 := time.Now()
	data, err := postWithRetry(nil, strings.TrimRight(addr, "/")+"/v1/prove", payload, retries, backoff)
	if err != nil {
		return err
	}
	var reply struct {
		Backend string   `json:"backend"`
		Proof   string   `json:"proof"`
		Public  []string `json:"public"`
		ProveMs float64  `json:"prove_ms"`
		TotalMs float64  `json:"total_ms"`
	}
	if err := json.Unmarshal(data, &reply); err != nil {
		return fmt.Errorf("decoding prove reply: %v", err)
	}
	raw, err := hex.DecodeString(reply.Proof)
	if err != nil {
		return fmt.Errorf("decoding proof hex: %v", err)
	}
	if err := os.WriteFile(proofPath, raw, 0o644); err != nil {
		return err
	}
	fmt.Printf("[%s@%s] prove=%.0fms total=%.0fms round-trip=%v public=%v\n",
		reply.Backend, addr, reply.ProveMs, reply.TotalMs,
		time.Since(t0).Round(time.Millisecond), reply.Public)
	return nil
}

// verifyRemote posts a proof (as written by proveRemote or the local
// pipeline — both use the backend's serialization) for server-side
// verification against the circuit's cached verifying key.
func verifyRemote(addr, curveName, backendName, circuitPath, proofPath string, publics inputFlags, retries int, backoff time.Duration) error {
	src, err := os.ReadFile(circuitPath)
	if err != nil {
		return err
	}
	raw, err := os.ReadFile(proofPath)
	if err != nil {
		return err
	}
	payload, err := json.Marshal(map[string]any{
		"curve":   curveName,
		"backend": backendName,
		"circuit": string(src),
		"proof":   hex.EncodeToString(raw),
		"public":  []string(publics),
	})
	if err != nil {
		return err
	}
	data, err := postWithRetry(nil, strings.TrimRight(addr, "/")+"/v1/verify", payload, retries, backoff)
	if err != nil {
		return err
	}
	var reply struct {
		Valid bool `json:"valid"`
	}
	if err := json.Unmarshal(data, &reply); err != nil {
		return fmt.Errorf("decoding verify reply: %v", err)
	}
	if !reply.Valid {
		return fmt.Errorf("proof is INVALID")
	}
	fmt.Printf("OK: proof is valid [%s@%s]\n", backendName, addr)
	return nil
}
