package main

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"zkperf/internal/client"
)

// Remote mode: `zkcli prove -addr http://host:8090 …`, `zkcli verify
// -addr …` and the `zkcli job …` subcommands drive a running zkserve
// (or zkgateway) instead of the local file pipeline. The transport is
// the shared internal/client package — the same envelope-aware retry
// policy the gateway uses — so retryable sheds (queue full, draining,
// circuit breaker cooldown, deadline) back off with jitter and honor
// the server's Retry-After hint, while non-retryable errors surface
// immediately with their envelope code.

// newRemoteClient builds the shared client with zkcli's retry budget
// and a stderr progress line per retry.
func newRemoteClient(addr string, retries int, backoff time.Duration) *client.Client {
	c := client.New(addr)
	c.Retries = retries
	c.Backoff = backoff
	c.OnRetry = func(err error, delay time.Duration, attempt, total int) {
		fmt.Fprintf(os.Stderr, "zkcli: retryable failure (%v), retrying in %v [%d/%d]\n",
			err, delay.Round(time.Millisecond), attempt, total)
	}
	return c
}

// proveBody assembles the /v1/prove (and prove-kind /v1/jobs) payload.
func proveBody(curveName, backendName, circuitPath string, inputs inputFlags, timeout time.Duration) (map[string]any, error) {
	src, err := os.ReadFile(circuitPath)
	if err != nil {
		return nil, err
	}
	in := make(map[string]string, len(inputs))
	for _, pair := range inputs {
		name, val, ok := strings.Cut(pair, "=")
		if !ok {
			return nil, fmt.Errorf("malformed -input %q (want name=value)", pair)
		}
		in[name] = val
	}
	return map[string]any{
		"curve":      curveName,
		"backend":    backendName,
		"circuit":    string(src),
		"inputs":     in,
		"timeout_ms": timeout.Milliseconds(),
	}, nil
}

// verifyBody assembles the /v1/verify (and verify-kind /v1/jobs) payload.
func verifyBody(curveName, backendName, circuitPath, proofPath string, publics inputFlags) (map[string]any, error) {
	src, err := os.ReadFile(circuitPath)
	if err != nil {
		return nil, err
	}
	raw, err := os.ReadFile(proofPath)
	if err != nil {
		return nil, err
	}
	return map[string]any{
		"curve":   curveName,
		"backend": backendName,
		"circuit": string(src),
		"proof":   hex.EncodeToString(raw),
		"public":  []string(publics),
	}, nil
}

// proveReply mirrors the server's prove response.
type proveReply struct {
	Backend string   `json:"backend"`
	Proof   string   `json:"proof"`
	Public  []string `json:"public"`
	ProveMs float64  `json:"prove_ms"`
	TotalMs float64  `json:"total_ms"`
}

// writeProof decodes the reply's hex proof and writes it where the
// local pipeline would have.
func (r *proveReply) writeProof(path string) error {
	raw, err := hex.DecodeString(r.Proof)
	if err != nil {
		return fmt.Errorf("decoding proof hex: %v", err)
	}
	return os.WriteFile(path, raw, 0o644)
}

// proveRemote posts one synchronous prove request and writes the
// returned proof bytes.
func proveRemote(addr, curveName, backendName, circuitPath, proofPath string, inputs inputFlags, timeout time.Duration, retries int, backoff time.Duration) error {
	body, err := proveBody(curveName, backendName, circuitPath, inputs, timeout)
	if err != nil {
		return err
	}
	t0 := time.Now()
	var reply proveReply
	if err := newRemoteClient(addr, retries, backoff).PostJSON("/v1/prove", body, &reply); err != nil {
		return err
	}
	if err := reply.writeProof(proofPath); err != nil {
		return err
	}
	fmt.Printf("[%s@%s] prove=%.0fms total=%.0fms round-trip=%v public=%v\n",
		reply.Backend, addr, reply.ProveMs, reply.TotalMs,
		time.Since(t0).Round(time.Millisecond), reply.Public)
	return nil
}

// verifyRemote posts a proof (as written by proveRemote or the local
// pipeline — both use the backend's serialization) for server-side
// verification against the circuit's cached verifying key.
func verifyRemote(addr, curveName, backendName, circuitPath, proofPath string, publics inputFlags, retries int, backoff time.Duration) error {
	body, err := verifyBody(curveName, backendName, circuitPath, proofPath, publics)
	if err != nil {
		return err
	}
	var reply struct {
		Valid bool `json:"valid"`
	}
	if err := newRemoteClient(addr, retries, backoff).PostJSON("/v1/verify", body, &reply); err != nil {
		return err
	}
	if !reply.Valid {
		return fmt.Errorf("proof is INVALID")
	}
	fmt.Printf("OK: proof is valid [%s@%s]\n", backendName, addr)
	return nil
}

// batchManifestEntry is one line of the -batch manifest: file paths for
// the circuit and proof plus the public inputs, mirroring the flags of a
// single verify. Empty curve/backend fall back to the command's flags.
type batchManifestEntry struct {
	Curve   string   `json:"curve,omitempty"`
	Backend string   `json:"backend,omitempty"`
	Circuit string   `json:"circuit"`
	Proof   string   `json:"proof"`
	Public  []string `json:"public"`
}

// verifyBatchRemote reads a JSON manifest of {circuit, proof, public}
// entries and checks them all in one POST /v1/verify/batch — the server
// folds same-circuit items into a single pairing check. Exit status is
// an error if any item is invalid or errored; every item's verdict is
// printed either way.
func verifyBatchRemote(addr, manifestPath, defCurve, defBackend string, retries int, backoff time.Duration) error {
	raw, err := os.ReadFile(manifestPath)
	if err != nil {
		return err
	}
	var entries []batchManifestEntry
	if err := json.Unmarshal(raw, &entries); err != nil {
		return fmt.Errorf("parsing manifest %s: %v (want a JSON array of {circuit, proof, public})", manifestPath, err)
	}
	if len(entries) == 0 {
		return fmt.Errorf("manifest %s is empty", manifestPath)
	}
	items := make([]client.VerifyItem, len(entries))
	for i, e := range entries {
		src, err := os.ReadFile(e.Circuit)
		if err != nil {
			return fmt.Errorf("manifest entry %d: %v", i, err)
		}
		proof, err := os.ReadFile(e.Proof)
		if err != nil {
			return fmt.Errorf("manifest entry %d: %v", i, err)
		}
		curveName, backendName := e.Curve, e.Backend
		if curveName == "" {
			curveName = defCurve
		}
		if backendName == "" {
			backendName = defBackend
		}
		items[i] = client.VerifyItem{
			Curve:   curveName,
			Backend: backendName,
			Circuit: string(src),
			Proof:   hex.EncodeToString(proof),
			Public:  e.Public,
		}
	}
	t0 := time.Now()
	results, err := newRemoteClient(addr, retries, backoff).VerifyBatch(items)
	if err != nil {
		return err
	}
	bad := 0
	for i, r := range results {
		switch {
		case r.Err != nil:
			bad++
			fmt.Printf("[%d] %s: ERROR %s: %s\n", i, entries[i].Proof, r.Err.Code, r.Err.Message)
		case r.Valid != nil && *r.Valid:
			fmt.Printf("[%d] %s: OK\n", i, entries[i].Proof)
		default:
			bad++
			fmt.Printf("[%d] %s: INVALID\n", i, entries[i].Proof)
		}
	}
	fmt.Printf("%d/%d proofs valid [%s] round-trip=%v\n",
		len(results)-bad, len(results), addr, time.Since(t0).Round(time.Millisecond))
	if bad > 0 {
		return fmt.Errorf("%d of %d proofs failed verification", bad, len(results))
	}
	return nil
}

// jobStatus mirrors the server's /v1/jobs/{id} response.
type jobStatus struct {
	ID     string          `json:"id"`
	Kind   string          `json:"kind"`
	State  string          `json:"state"`
	WaitMs float64         `json:"wait_ms"`
	RunMs  float64         `json:"run_ms"`
	Result json.RawMessage `json:"result,omitempty"`
	Error  *struct {
		Code      string `json:"code"`
		Message   string `json:"message"`
		Retryable bool   `json:"retryable"`
	} `json:"error,omitempty"`
	Deduped bool `json:"deduped,omitempty"`
}

// failure converts a failed job's embedded envelope into a *client.Error
// so `zkcli job wait` exits with the same status discipline as the
// synchronous path (nil when the job did not fail).
func (j *jobStatus) failure() error {
	if j.State != "failed" {
		return nil
	}
	if j.Error == nil {
		return fmt.Errorf("job %s failed without an error envelope", j.ID)
	}
	return &client.Error{Code: j.Error.Code, Message: j.Error.Message, Retryable: j.Error.Retryable}
}

// newJobFlagSet builds a flag set for one job subcommand.
func newJobFlagSet(name string) *flag.FlagSet {
	return flag.NewFlagSet(name, flag.ExitOnError)
}

// cmdJob dispatches the async-job subcommands.
func cmdJob(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: zkcli job <submit|status|wait|cancel> [flags]")
	}
	switch args[0] {
	case "submit":
		return cmdJobSubmit(args[1:])
	case "status":
		return cmdJobStatus(args[1:])
	case "wait":
		return cmdJobWait(args[1:])
	case "cancel":
		return cmdJobCancel(args[1:])
	default:
		return fmt.Errorf("unknown job subcommand %q (want submit, status, wait or cancel)", args[0])
	}
}

func cmdJobSubmit(args []string) error {
	fs := newJobFlagSet("job submit")
	addr := fs.String("addr", "http://localhost:8090", "zkserve or zkgateway base URL")
	kind := fs.String("kind", "prove", "job kind: prove or verify")
	curveName := fs.String("curve", "bn128", "curve")
	backendName := fs.String("backend", "groth16", "proving backend")
	circuitPath := fs.String("circuit", "", "circuit source file (.zkc)")
	proofPath := fs.String("proof", "circuit.proof", "proof file (verify kind)")
	timeout := fs.Duration("timeout", 0, "per-request deadline once running (0: server default)")
	retries := fs.Int("retries", 3, "extra attempts for retryable errors")
	retryBackoff := fs.Duration("retry-backoff", 200*time.Millisecond, "base retry backoff")
	idemKey := fs.String("idempotency-key", "auto", "Idempotency-Key header so a retried submit dedups to one job on a journaled server (\"auto\" mints a random key, empty disables)")
	var inputs, publics inputFlags
	fs.Var(&inputs, "input", "input assignment name=value (prove kind, repeatable)")
	fs.Var(&publics, "public", "public input value (verify kind, repeatable, in wire order)")
	fs.Parse(args)
	if *circuitPath == "" {
		return fmt.Errorf("-circuit is required")
	}
	if *idemKey == "auto" {
		var b [16]byte
		if _, err := rand.Read(b[:]); err != nil {
			return fmt.Errorf("minting idempotency key: %v", err)
		}
		*idemKey = "zkcli-" + hex.EncodeToString(b[:])
	}
	var body map[string]any
	var err error
	switch *kind {
	case "prove":
		body, err = proveBody(*curveName, *backendName, *circuitPath, inputs, *timeout)
	case "verify":
		body, err = verifyBody(*curveName, *backendName, *circuitPath, *proofPath, publics)
	default:
		return fmt.Errorf("unknown job kind %q (want prove or verify)", *kind)
	}
	if err != nil {
		return err
	}
	body["kind"] = *kind
	var header http.Header
	if *idemKey != "" {
		header = http.Header{"Idempotency-Key": []string{*idemKey}}
	}
	var st jobStatus
	if _, err := newRemoteClient(*addr, *retries, *retryBackoff).PostJSONWith("/v1/jobs", header, body, &st); err != nil {
		return err
	}
	fmt.Printf("%s\n", st.ID)
	if st.Deduped {
		fmt.Fprintf(os.Stderr, "zkcli: job %s already submitted under this idempotency key (%s, %s)\n", st.ID, st.Kind, st.State)
	} else {
		fmt.Fprintf(os.Stderr, "zkcli: job %s accepted (%s, %s)\n", st.ID, st.Kind, st.State)
	}
	return nil
}

func cmdJobStatus(args []string) error {
	fs := newJobFlagSet("job status")
	addr := fs.String("addr", "http://localhost:8090", "zkserve or zkgateway base URL")
	id := fs.String("id", "", "job ID (from `zkcli job submit`)")
	asJSON := fs.Bool("json", false, "print the raw JSON status")
	fs.Parse(args)
	if *id == "" {
		return fmt.Errorf("-id is required")
	}
	var st jobStatus
	if err := client.New(*addr).GetJSON("/v1/jobs/"+*id, &st); err != nil {
		return err
	}
	return printJobStatus(&st, *asJSON)
}

func cmdJobWait(args []string) error {
	fs := newJobFlagSet("job wait")
	addr := fs.String("addr", "http://localhost:8090", "zkserve or zkgateway base URL")
	id := fs.String("id", "", "job ID (from `zkcli job submit`)")
	poll := fs.Duration("poll", 200*time.Millisecond, "status poll interval")
	timeout := fs.Duration("timeout", 10*time.Minute, "give up after this long")
	proofPath := fs.String("proof", "", "write the proof here when a prove job finishes")
	asJSON := fs.Bool("json", false, "print the raw JSON status")
	fs.Parse(args)
	if *id == "" {
		return fmt.Errorf("-id is required")
	}
	c := client.New(*addr)
	deadline := time.Now().Add(*timeout)
	seen := false // the job existed at least once during this wait
	for {
		var st jobStatus
		hint, err := c.GetJSONHint("/v1/jobs/"+*id, &st)
		switch {
		case err == nil:
		case isJobGone(err):
			// A 404 after we have seen the job is the TTL sweeper, not a
			// typo'd ID — say so, they need different fixes.
			if seen {
				return fmt.Errorf("job %s finished and its result was already evicted by the server's TTL; rerun with a larger -job-ttl or poll sooner", *id)
			}
			return fmt.Errorf("job %s does not exist on %s (never submitted there, or long since evicted)", *id, *addr)
		case time.Now().After(deadline):
			return err
		default:
			// Transient trouble (connection refused while the server
			// restarts, a shed) is exactly what a durable-jobs wait must
			// ride out: keep polling until the deadline.
			fmt.Fprintf(os.Stderr, "zkcli: poll failed (%v), retrying\n", err)
			time.Sleep(*poll)
			continue
		}
		seen = true
		if st.State == "done" || st.State == "failed" {
			if err := printJobStatus(&st, *asJSON); err != nil {
				return err
			}
			if st.State == "done" && st.Kind == "prove" && *proofPath != "" {
				var reply proveReply
				if err := json.Unmarshal(st.Result, &reply); err != nil {
					return fmt.Errorf("decoding prove result: %v", err)
				}
				if err := reply.writeProof(*proofPath); err != nil {
					return err
				}
			}
			return st.failure()
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("job %s still %s after %v", *id, st.State, *timeout)
		}
		// The server paces pollers via Retry-After on live jobs; honor it
		// when it asks for more patience than our own interval.
		sleep := *poll
		if hint > sleep {
			sleep = hint
		}
		time.Sleep(sleep)
	}
}

// isJobGone reports whether err is the server's 404 job_not_found
// envelope (as opposed to transport trouble or some other envelope).
func isJobGone(err error) bool {
	var we *client.Error
	return errors.As(err, &we) && we.Code == "job_not_found"
}

func cmdJobCancel(args []string) error {
	fs := newJobFlagSet("job cancel")
	addr := fs.String("addr", "http://localhost:8090", "zkserve or zkgateway base URL")
	id := fs.String("id", "", "job ID (from `zkcli job submit`)")
	fs.Parse(args)
	if *id == "" {
		return fmt.Errorf("-id is required")
	}
	var st jobStatus
	if err := client.New(*addr).Delete("/v1/jobs/"+*id, &st); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "zkcli: job %s now %s\n", st.ID, st.State)
	return nil
}

func printJobStatus(st *jobStatus, asJSON bool) error {
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(st)
	}
	fmt.Printf("job %s: kind=%s state=%s wait=%.0fms run=%.0fms\n",
		st.ID, st.Kind, st.State, st.WaitMs, st.RunMs)
	if st.State == "done" && st.Kind == "prove" {
		var reply proveReply
		if err := json.Unmarshal(st.Result, &reply); err == nil {
			fmt.Printf("  [%s] prove=%.0fms total=%.0fms public=%v\n",
				reply.Backend, reply.ProveMs, reply.TotalMs, reply.Public)
		}
	}
	if st.Error != nil {
		fmt.Printf("  error: %s: %s (retryable=%v)\n", st.Error.Code, st.Error.Message, st.Error.Retryable)
	}
	return nil
}
