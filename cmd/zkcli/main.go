// Command zkcli is a snarkjs-style command-line pipeline for the zk-SNARK
// workflow of the paper's Figure 1. Each stage reads its predecessors'
// artifacts from files and writes its own:
//
//	zkcli compile -circuit c.zkc -curve bn128 -r1cs c.r1cs -prog c.prog
//	zkcli setup   -curve bn128 -backend plonk -r1cs c.r1cs -pk c.pk -vk c.vk
//	zkcli witness -curve bn128 -r1cs c.r1cs -prog c.prog -input x=7 -wtns c.wtns
//	zkcli prove   -curve bn128 -backend plonk -r1cs c.r1cs -pk c.pk -wtns c.wtns -proof c.proof
//	zkcli verify  -curve bn128 -backend plonk -vk c.vk -wtns c.wtns -proof c.proof
//
// setup, prove and verify take -backend (groth16 default, plonk); `zkcli
// backends` lists the registered backends. Key/proof artifacts are in the
// selected backend's serialization, so the same -backend must be used
// across the pipeline. Each stage prints a per-backend timing report;
// `prove -telemetry` additionally prints the kernel span tree (NTT, MSM,
// pairing) recorded while proving.
//
// `zkcli stats -addr http://host:8090` fetches a running zkserve's
// /v1/stats and renders the documented schema as a table; -json dumps
// the raw snapshot.
//
// prove and verify also take -addr to run against a remote zkserve
// instead of local files (prove needs -circuit/-input, verify needs
// -circuit/-public). Remote calls honour the server's error envelope:
// retryable failures (queue_full, draining, circuit_open,
// deadline_exceeded) are retried up to -retries times with jittered
// exponential backoff starting at -retry-backoff.
//
// The -input flag may repeat; values are decimal or 0x-hex field elements.
// `zkcli gen -e N -o c.zkc` emits the paper's exponentiation benchmark
// circuit source.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"zkperf/internal/backend"
	"zkperf/internal/circuit"
	"zkperf/internal/client"
	"zkperf/internal/curve"
	"zkperf/internal/ff"
	"zkperf/internal/groth16"
	"zkperf/internal/provesvc"
	"zkperf/internal/r1cs"
	"zkperf/internal/telemetry"
	"zkperf/internal/witness"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	start := time.Now()
	switch cmd {
	case "gen":
		err = cmdGen(args)
	case "compile":
		err = cmdCompile(args)
	case "setup":
		err = cmdSetup(args)
	case "witness":
		err = cmdWitness(args)
	case "prove":
		err = cmdProve(args)
	case "verify":
		err = cmdVerify(args)
	case "backends":
		err = cmdBackends(args)
	case "stats":
		err = cmdStats(args)
	case "job":
		err = cmdJob(args)
	default:
		usage()
	}
	if err != nil {
		var env *client.Error
		if errors.As(err, &env) && !env.Retryable {
			// A non-retryable server envelope means the request itself is
			// wrong (bad circuit, unknown backend, invalid proof) — print
			// the machine-readable code and exit with a distinct status so
			// scripts can tell it apart from transient failures.
			fmt.Fprintf(os.Stderr, "zkcli %s: server rejected request: code=%s: %s\n", cmd, env.Code, env.Message)
		} else {
			fmt.Fprintf(os.Stderr, "zkcli %s: %v\n", cmd, err)
		}
		os.Exit(exitStatus(err))
	}
	fmt.Fprintf(os.Stderr, "[%s done in %v]\n", cmd, time.Since(start).Round(time.Millisecond))
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: zkcli <gen|compile|setup|witness|prove|verify|backends|stats|job> [flags]")
	os.Exit(2)
}

// exitStatus maps a command failure to the process exit status: 3 for a
// non-retryable server envelope (the request is wrong; retrying cannot
// help), 1 for everything else. Usage errors exit 2 via usage().
func exitStatus(err error) int {
	var env *client.Error
	if errors.As(err, &env) && !env.Retryable {
		return 3
	}
	return 1
}

// inputFlags collects repeated -input name=value pairs.
type inputFlags []string

func (f *inputFlags) String() string     { return strings.Join(*f, ",") }
func (f *inputFlags) Set(s string) error { *f = append(*f, s); return nil }

func getCurve(name string) (*curve.Curve, error) {
	c := curve.NewCurve(name)
	if c == nil {
		return nil, fmt.Errorf("unknown curve %q (use bn128 or bls12-381)", name)
	}
	return c, nil
}

func getBackend(name string, c *curve.Curve, threads int) (backend.Backend, error) {
	bk, err := backend.New(name, c, threads)
	if err != nil {
		return nil, fmt.Errorf("%w (available: %s)", err, strings.Join(backend.Names(), ", "))
	}
	return bk, nil
}

func cmdBackends(args []string) error {
	fs := flag.NewFlagSet("backends", flag.ExitOnError)
	fs.Parse(args)
	for _, name := range backend.Names() {
		marker := " "
		if name == "groth16" {
			marker = "*" // the default when -backend is omitted
		}
		fmt.Printf("%s %s\n", marker, name)
	}
	return nil
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	e := fs.Int("e", 1024, "exponent (number of constraints)")
	out := fs.String("o", "circuit.zkc", "output circuit source file")
	fs.Parse(args)
	return os.WriteFile(*out, []byte(circuit.ExponentiateSource(*e)), 0o644)
}

func cmdCompile(args []string) error {
	fs := flag.NewFlagSet("compile", flag.ExitOnError)
	circuitPath := fs.String("circuit", "", "circuit source file (.zkc)")
	curveName := fs.String("curve", "bn128", "curve: bn128 or bls12-381")
	r1csPath := fs.String("r1cs", "circuit.r1cs", "output constraint system")
	progPath := fs.String("prog", "circuit.prog", "output solver program")
	fs.Parse(args)
	if *circuitPath == "" {
		return fmt.Errorf("-circuit is required")
	}
	c, err := getCurve(*curveName)
	if err != nil {
		return err
	}
	src, err := os.ReadFile(*circuitPath)
	if err != nil {
		return err
	}
	sys, prog, err := circuit.CompileSource(c.Fr, string(src))
	if err != nil {
		return err
	}
	st := sys.Stats()
	fmt.Printf("compiled: %d constraints, %d variables (%d public, %d private)\n",
		st.Constraints, st.Variables, st.Public, st.Private)
	if err := writeFile(*r1csPath, func(f *os.File) error {
		_, err := sys.WriteTo(f)
		return err
	}); err != nil {
		return err
	}
	return writeFile(*progPath, func(f *os.File) error {
		return witness.WriteProgram(f, c.Fr, prog)
	})
}

func cmdSetup(args []string) error {
	fs := flag.NewFlagSet("setup", flag.ExitOnError)
	curveName := fs.String("curve", "bn128", "curve")
	backendName := fs.String("backend", "groth16", "proving backend (see `zkcli backends`)")
	r1csPath := fs.String("r1cs", "circuit.r1cs", "constraint system")
	pkPath := fs.String("pk", "circuit.pk", "output proving key")
	vkPath := fs.String("vk", "circuit.vk", "output verification key")
	seed := fs.Uint64("seed", uint64(time.Now().UnixNano()), "toxic-waste RNG seed")
	threads := fs.Int("threads", 1, "worker threads")
	fs.Parse(args)
	c, err := getCurve(*curveName)
	if err != nil {
		return err
	}
	bk, err := getBackend(*backendName, c, *threads)
	if err != nil {
		return err
	}
	sys, err := readSystem(*r1csPath, c)
	if err != nil {
		return err
	}
	t0 := time.Now()
	pk, vk, err := bk.Setup(context.Background(), sys, ff.NewRNG(*seed))
	if err != nil {
		return err
	}
	setupTime := time.Since(t0)
	t1 := time.Now()
	if err := writeFile(*pkPath, func(f *os.File) error { return pk.Encode(f) }); err != nil {
		return err
	}
	if err := writeFile(*vkPath, func(f *os.File) error { return vk.Encode(f) }); err != nil {
		return err
	}
	fmt.Printf("[%s] setup=%v write=%v\n",
		bk.Name(), setupTime.Round(time.Millisecond), time.Since(t1).Round(time.Millisecond))
	return nil
}

func cmdWitness(args []string) error {
	fs := flag.NewFlagSet("witness", flag.ExitOnError)
	curveName := fs.String("curve", "bn128", "curve")
	r1csPath := fs.String("r1cs", "circuit.r1cs", "constraint system")
	progPath := fs.String("prog", "circuit.prog", "solver program")
	wtnsPath := fs.String("wtns", "circuit.wtns", "output witness")
	var inputs inputFlags
	fs.Var(&inputs, "input", "input assignment name=value (repeatable)")
	fs.Parse(args)
	c, err := getCurve(*curveName)
	if err != nil {
		return err
	}
	sys, err := readSystem(*r1csPath, c)
	if err != nil {
		return err
	}
	pf, err := os.Open(*progPath)
	if err != nil {
		return err
	}
	defer pf.Close()
	prog, err := witness.ReadProgram(pf, c.Fr)
	if err != nil {
		return err
	}
	assign := witness.Assignment{}
	for _, in := range inputs {
		name, val, ok := strings.Cut(in, "=")
		if !ok {
			return fmt.Errorf("malformed -input %q (want name=value)", in)
		}
		var e ff.Element
		if _, err := c.Fr.SetString(&e, val); err != nil {
			return err
		}
		assign[name] = e
	}
	w, err := witness.Solve(sys, prog, assign)
	if err != nil {
		return err
	}
	fmt.Printf("witness: %d wires solved, %d public values\n", len(w.Full), len(w.Public))
	return writeFile(*wtnsPath, func(f *os.File) error {
		return groth16.WriteWitness(f, c.Fr, w)
	})
}

func cmdProve(args []string) error {
	fs := flag.NewFlagSet("prove", flag.ExitOnError)
	curveName := fs.String("curve", "bn128", "curve")
	backendName := fs.String("backend", "groth16", "proving backend (see `zkcli backends`)")
	r1csPath := fs.String("r1cs", "circuit.r1cs", "constraint system")
	pkPath := fs.String("pk", "circuit.pk", "proving key")
	wtnsPath := fs.String("wtns", "circuit.wtns", "witness")
	proofPath := fs.String("proof", "circuit.proof", "output proof")
	seed := fs.Uint64("seed", uint64(time.Now().UnixNano()), "blinding RNG seed")
	threads := fs.Int("threads", 1, "worker threads")
	telemetryOn := fs.Bool("telemetry", false, "record kernel spans and print the span tree after proving")
	addr := fs.String("addr", "", "prove remotely against a zkserve base URL instead of local files")
	circuitPath := fs.String("circuit", "", "circuit source file (remote mode)")
	timeout := fs.Duration("timeout", 0, "remote per-request deadline (0: server default)")
	retries := fs.Int("retries", 3, "remote mode: extra attempts for retryable errors")
	retryBackoff := fs.Duration("retry-backoff", 200*time.Millisecond, "remote mode: base retry backoff (doubles per attempt, jittered)")
	var inputs inputFlags
	fs.Var(&inputs, "input", "input assignment name=value (remote mode, repeatable)")
	fs.Parse(args)
	if *addr != "" {
		if *circuitPath == "" {
			return fmt.Errorf("-circuit is required with -addr")
		}
		return proveRemote(*addr, *curveName, *backendName, *circuitPath, *proofPath,
			inputs, *timeout, *retries, *retryBackoff)
	}
	c, err := getCurve(*curveName)
	if err != nil {
		return err
	}
	bk, err := getBackend(*backendName, c, *threads)
	if err != nil {
		return err
	}
	sys, err := readSystem(*r1csPath, c)
	if err != nil {
		return err
	}
	t0 := time.Now()
	pf, err := os.Open(*pkPath)
	if err != nil {
		return err
	}
	defer pf.Close()
	pk, err := bk.ReadProvingKey(pf, sys)
	if err != nil {
		return err
	}
	loadTime := time.Since(t0)
	wf, err := os.Open(*wtnsPath)
	if err != nil {
		return err
	}
	defer wf.Close()
	w, err := groth16.ReadWitness(wf, c.Fr)
	if err != nil {
		return err
	}
	ctx := context.Background()
	var probe *telemetry.Probe
	if *telemetryOn {
		probe = telemetry.NewProbe("zkcli")
		ctx = telemetry.WithProbe(ctx, probe)
	}
	t1 := time.Now()
	proof, err := bk.Prove(ctx, sys, pk, w, ff.NewRNG(*seed))
	if err != nil {
		return err
	}
	proveTime := time.Since(t1)
	if err := writeFile(*proofPath, func(f *os.File) error { return proof.Encode(f) }); err != nil {
		return err
	}
	fmt.Printf("[%s] pk-load=%v prove=%v\n",
		bk.Name(), loadTime.Round(time.Millisecond), proveTime.Round(time.Millisecond))
	if probe != nil {
		fmt.Printf("telemetry span tree [%s/%s]:\n", bk.Name(), *curveName)
		probe.Tree().WriteTree(os.Stdout)
	}
	return nil
}

func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	curveName := fs.String("curve", "bn128", "curve")
	backendName := fs.String("backend", "groth16", "proving backend (see `zkcli backends`)")
	vkPath := fs.String("vk", "circuit.vk", "verification key")
	wtnsPath := fs.String("wtns", "circuit.wtns", "witness (public part is used)")
	proofPath := fs.String("proof", "circuit.proof", "proof")
	addr := fs.String("addr", "", "verify remotely against a zkserve base URL instead of local files")
	circuitPath := fs.String("circuit", "", "circuit source file (remote mode)")
	batchPath := fs.String("batch", "", "remote mode: verify a JSON manifest of {circuit, proof, public} entries in one /v1/verify/batch call")
	retries := fs.Int("retries", 3, "remote mode: extra attempts for retryable errors")
	retryBackoff := fs.Duration("retry-backoff", 200*time.Millisecond, "remote mode: base retry backoff (doubles per attempt, jittered)")
	var publics inputFlags
	fs.Var(&publics, "public", "public input value (remote mode, repeatable, in wire order)")
	fs.Parse(args)
	if *batchPath != "" {
		if *addr == "" {
			return fmt.Errorf("-batch requires -addr (batch verify is remote-only)")
		}
		return verifyBatchRemote(*addr, *batchPath, *curveName, *backendName, *retries, *retryBackoff)
	}
	if *addr != "" {
		if *circuitPath == "" {
			return fmt.Errorf("-circuit is required with -addr")
		}
		return verifyRemote(*addr, *curveName, *backendName, *circuitPath, *proofPath,
			publics, *retries, *retryBackoff)
	}
	c, err := getCurve(*curveName)
	if err != nil {
		return err
	}
	bk, err := getBackend(*backendName, c, 1)
	if err != nil {
		return err
	}
	vf, err := os.Open(*vkPath)
	if err != nil {
		return err
	}
	defer vf.Close()
	vk, err := bk.ReadVerifyingKey(vf)
	if err != nil {
		return err
	}
	wf, err := os.Open(*wtnsPath)
	if err != nil {
		return err
	}
	defer wf.Close()
	w, err := groth16.ReadWitness(wf, c.Fr)
	if err != nil {
		return err
	}
	pf, err := os.Open(*proofPath)
	if err != nil {
		return err
	}
	defer pf.Close()
	proof, err := bk.ReadProof(pf)
	if err != nil {
		return fmt.Errorf("%w: undecodable %s proof: %v", backend.ErrInvalidProof, bk.Name(), err)
	}
	t0 := time.Now()
	if err := bk.Verify(context.Background(), vk, proof, w.Public); err != nil {
		return err
	}
	fmt.Printf("OK: proof is valid [%s] verify=%v\n", bk.Name(), time.Since(t0).Round(time.Millisecond))
	return nil
}

// cmdStats fetches /v1/stats from a running zkserve and renders it. It
// decodes into provesvc.Snapshot — the same struct the server encodes —
// so a schema drift between the two is a compile error, not a surprise.
func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:8090", "zkserve base URL")
	asJSON := fs.Bool("json", false, "print the raw JSON snapshot")
	fs.Parse(args)

	resp, err := http.Get(strings.TrimRight(*addr, "/") + "/v1/stats")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /v1/stats: %s", resp.Status)
	}
	var st provesvc.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return fmt.Errorf("decoding stats: %v", err)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(st)
	}

	fmt.Printf("service: accepted=%d completed=%d failed=%d rejected=%d cancelled=%d dropped=%d verified=%d workers=%d draining=%v\n",
		st.Service.Accepted, st.Service.Completed, st.Service.Failed,
		st.Service.Rejected, st.Service.Cancelled, st.Service.Dropped,
		st.Service.Verified, st.Service.Workers, st.Service.Draining)
	fmt.Printf("queue:   depth=%d/%d in_flight=%d wait_p50=%.2fms wait_p99=%.2fms\n",
		st.Queue.Depth, st.Queue.Capacity, st.Queue.InFlight,
		st.Queue.Wait.P50Ms, st.Queue.Wait.P99Ms)
	fmt.Printf("cache:   hits=%d misses=%d hit_rate=%.2f setups=%d\n",
		st.Cache.Hits, st.Cache.Misses, st.Cache.HitRate, st.Cache.Setups)
	ar := st.Artifacts
	fmt.Printf("artifacts: enabled=%v disk_loads=%d disk_writes=%d quarantined=%d write_errors=%d\n",
		ar.Enabled, ar.DiskLoads, ar.DiskWrites, ar.Quarantined, ar.WriteErrors)
	fmt.Printf("  tables builds=%d disk_loads=%d disk_writes=%d quarantined=%d\n",
		ar.TableBuilds, ar.TableLoads, ar.TableWrites, ar.TableQuarantined)
	sc := st.Sched
	fmt.Printf("sched:   enabled=%v workers=%d reserved=%d cold=%d budget=%d threads hot=%d queue(hot=%d cold=%d) arrivals=%.2f/s drain=%.2f/s\n",
		sc.Enabled, sc.Workers, sc.ReservedWorkers, sc.ColdWorkers,
		sc.ThreadBudget, sc.HotCount, sc.HotQueueDepth, sc.ColdQueueDepth,
		sc.ArrivalRatePerSec, sc.DrainRatePerSec)
	if sc.ThreadGrant.Count > 0 {
		fmt.Printf("  grants count=%-6d mean=%.1f p50=%d p95=%d threads/job\n",
			sc.ThreadGrant.Count, sc.ThreadGrant.Mean, sc.ThreadGrant.P50, sc.ThreadGrant.P95)
	}
	for _, hc := range sc.Hot {
		fmt.Printf("  hot %s backend=%s curve=%s rate=%.2f/s reserved=%d queued=%d\n",
			hc.Circuit, hc.Backend, hc.Curve, hc.RatePerSec, hc.Reserved, hc.QueueDepth)
	}
	names := make([]string, 0, len(st.Backends))
	for name := range st.Backends {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		bst := st.Backends[name]
		fmt.Printf("%s: completed=%d failed=%d rejected=%d cancelled=%d\n",
			name, bst.Completed, bst.Failed, bst.Rejected, bst.Cancelled)
		stages := make([]string, 0, len(bst.Stages))
		for stage := range bst.Stages {
			stages = append(stages, stage)
		}
		sort.Strings(stages)
		for _, stage := range stages {
			sum := bst.Stages[stage]
			if sum.Count == 0 {
				continue
			}
			fmt.Printf("  %-8s count=%-6d p50=%.2fms p95=%.2fms p99=%.2fms\n",
				stage, sum.Count, sum.P50Ms, sum.P95Ms, sum.P99Ms)
		}
	}
	return nil
}

func readSystem(path string, c *curve.Curve) (*r1cs.System, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sys := r1cs.NewSystem(c.Fr)
	if _, err := sys.ReadFrom(f); err != nil {
		return nil, err
	}
	return sys, nil
}

func writeFile(path string, fn func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
