package main

// The retry/jitter/envelope transport tests moved to internal/client
// alongside the shared implementation; what stays here is the zkcli
// glue: the exit-status mapping and the remote mode driven end to end
// against an in-process zkserve handler.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"zkperf/internal/client"
	"zkperf/internal/provesvc"
)

// TestExitStatus: non-retryable server envelopes exit 3 (distinct from
// the generic 1) so scripts can tell a bad request from a flaky server.
func TestExitStatus(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{&client.Error{Code: "bad_request", Retryable: false}, 3},
		{&client.Error{Code: "invalid_proof", Retryable: false}, 3},
		{fmt.Errorf("wrapped: %w", &client.Error{Code: "bad_request"}), 3},
		{&client.Error{Code: "queue_full", Retryable: true}, 1},
		{errors.New("dial tcp: connection refused"), 1},
		{nil, 1},
	}
	for _, c := range cases {
		if got := exitStatus(c.err); got != c.want {
			t.Errorf("exitStatus(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

// TestRemoteNonRetryableSurfacesEnvelope: a 400 envelope comes back as
// *client.Error after exactly one attempt, mapping to exit status 3.
func TestRemoteNonRetryableSurfacesEnvelope(t *testing.T) {
	var calls int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(map[string]any{
			"code": "bad_request", "message": "compile failed", "retryable": false,
		})
	}))
	defer srv.Close()

	dir := t.TempDir()
	circuitPath := filepath.Join(dir, "c.zkc")
	if err := cmdGen([]string{"-e", "16", "-o", circuitPath}); err != nil {
		t.Fatalf("gen: %v", err)
	}
	err := cmdProve([]string{"-addr", srv.URL, "-circuit", circuitPath,
		"-proof", filepath.Join(dir, "c.proof"), "-input", "x=3", "-retries", "5"})
	var env *client.Error
	if !errors.As(err, &env) || env.Code != "bad_request" {
		t.Fatalf("want *client.Error bad_request, got %v", err)
	}
	if calls != 1 {
		t.Fatalf("server saw %d calls, want exactly 1 (no retries on non-retryable)", calls)
	}
	if got := exitStatus(err); got != 3 {
		t.Fatalf("exitStatus = %d, want 3", got)
	}
}

// TestRemoteProveVerify drives the remote mode end to end against an
// in-process zkserve handler: prove writes a proof file, verify accepts
// it, and a wrong public input is rejected.
func TestRemoteProveVerify(t *testing.T) {
	svc := provesvc.New(provesvc.WithWorkers(1), provesvc.WithSeed(7), provesvc.WithTelemetry(nil))
	svc.Start()
	defer svc.Shutdown(context.Background())
	srv := httptest.NewServer(provesvc.NewHandler(svc))
	defer srv.Close()

	dir := t.TempDir()
	circuitPath := filepath.Join(dir, "c.zkc")
	proofPath := filepath.Join(dir, "c.proof")
	if err := cmdGen([]string{"-e", "16", "-o", circuitPath}); err != nil {
		t.Fatalf("gen: %v", err)
	}
	if err := cmdProve([]string{"-addr", srv.URL, "-circuit", circuitPath,
		"-proof", proofPath, "-input", "x=3"}); err != nil {
		t.Fatalf("remote prove: %v", err)
	}
	// 3^16 = 43046721 is the circuit's lone public output.
	if err := cmdVerify([]string{"-addr", srv.URL, "-circuit", circuitPath,
		"-proof", proofPath, "-public", "43046721"}); err != nil {
		t.Fatalf("remote verify: %v", err)
	}
	if err := cmdVerify([]string{"-addr", srv.URL, "-circuit", circuitPath,
		"-proof", proofPath, "-public", "42"}); err == nil {
		t.Fatal("remote verify accepted a wrong public input")
	}

	// Batch mode: a manifest of (valid, invalid) entries goes through
	// /v1/verify/batch; the invalid entry makes the command fail.
	manifestPath := filepath.Join(dir, "manifest.json")
	manifest := fmt.Sprintf(`[
		{"circuit": %q, "proof": %q, "public": ["43046721"]},
		{"circuit": %q, "proof": %q, "public": ["42"]}
	]`, circuitPath, proofPath, circuitPath, proofPath)
	if err := os.WriteFile(manifestPath, []byte(manifest), 0o644); err != nil {
		t.Fatal(err)
	}
	err := cmdVerify([]string{"-addr", srv.URL, "-batch", manifestPath})
	if err == nil {
		t.Fatal("batch verify with an invalid entry should fail")
	}
	if !strings.Contains(err.Error(), "1 of 2") {
		t.Fatalf("batch verify error = %v, want one of two proofs failing", err)
	}

	// All-valid manifest succeeds.
	allValid := fmt.Sprintf(`[{"circuit": %q, "proof": %q, "public": ["43046721"]}]`,
		circuitPath, proofPath)
	if err := os.WriteFile(manifestPath, []byte(allValid), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdVerify([]string{"-addr", srv.URL, "-batch", manifestPath}); err != nil {
		t.Fatalf("batch verify of a valid manifest: %v", err)
	}
}
