package main

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"zkperf/internal/provesvc"
)

// flakyServer fails the first n requests with the given envelope, then
// serves 200 {"ok":true}.
func flakyServer(t *testing.T, n int, status int, env wireError) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= int64(n) {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(status)
			json.NewEncoder(w).Encode(env)
			return
		}
		w.Write([]byte(`{"ok":true}`))
	}))
	t.Cleanup(srv.Close)
	return srv, &calls
}

// TestRetryEventualSuccess exercises the satellite contract: a server
// shedding with a retryable envelope (queue_full here, the same shape
// circuit_open and draining use) is retried and the call succeeds once
// the server recovers.
func TestRetryEventualSuccess(t *testing.T) {
	srv, calls := flakyServer(t, 2, http.StatusTooManyRequests,
		wireError{Code: "queue_full", Message: "job queue full", Retryable: true})
	data, err := postWithRetry(srv.Client(), srv.URL, []byte(`{}`), 3, time.Millisecond)
	if err != nil {
		t.Fatalf("expected eventual success, got %v", err)
	}
	if string(data) != `{"ok":true}` {
		t.Fatalf("unexpected body %q", data)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3 (2 failures + success)", got)
	}
}

// TestRetryNonRetryableFailsFast: a retryable=false envelope must not be
// retried, no matter the budget.
func TestRetryNonRetryableFailsFast(t *testing.T) {
	srv, calls := flakyServer(t, 100, http.StatusBadRequest,
		wireError{Code: "bad_request", Message: "no circuit", Retryable: false})
	_, err := postWithRetry(srv.Client(), srv.URL, []byte(`{}`), 5, time.Millisecond)
	var env *wireError
	if !errors.As(err, &env) || env.Code != "bad_request" {
		t.Fatalf("want *wireError bad_request, got %v", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d calls, want exactly 1", got)
	}
}

// TestRetryBudgetExhausted: a server that never recovers surfaces the
// last envelope after retries+1 total attempts.
func TestRetryBudgetExhausted(t *testing.T) {
	srv, calls := flakyServer(t, 100, http.StatusServiceUnavailable,
		wireError{Code: "circuit_open", Message: "breaker cooling down", Retryable: true})
	_, err := postWithRetry(srv.Client(), srv.URL, []byte(`{}`), 2, time.Millisecond)
	var env *wireError
	if !errors.As(err, &env) || env.Code != "circuit_open" {
		t.Fatalf("want *wireError circuit_open, got %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3 (1 + 2 retries)", got)
	}
}

// TestRetryNetworkError: a dead endpoint counts as retryable.
func TestRetryNetworkError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := srv.URL
	srv.Close() // now nothing listens there
	_, err := postWithRetry(nil, url, []byte(`{}`), 1, time.Millisecond)
	if err == nil {
		t.Fatal("expected a network error")
	}
	var env *wireError
	if errors.As(err, &env) {
		t.Fatalf("network failure misclassified as envelope error: %v", err)
	}
}

// TestRetryJitterBounds: the backoff doubles per attempt, stays within
// [d/2, d], and never goes non-positive or unbounded.
func TestRetryJitterBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	base := 100 * time.Millisecond
	for attempt := 0; attempt < 20; attempt++ {
		d := retryJitter(base, attempt, rng)
		if d <= 0 {
			t.Fatalf("attempt %d: non-positive backoff %v", attempt, d)
		}
		if d > time.Minute {
			t.Fatalf("attempt %d: backoff %v above the 1m cap", attempt, d)
		}
		if attempt < 5 {
			want := base << uint(attempt)
			if d < want/2 || d > want {
				t.Fatalf("attempt %d: backoff %v outside [%v, %v]", attempt, d, want/2, want)
			}
		}
	}
}

// TestRetryJitterZeroBase: -retry-backoff 0 asks for immediate retries;
// it must not be clamped up to the one-minute overflow cap.
func TestRetryJitterZeroBase(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, base := range []time.Duration{0, -time.Second} {
		for attempt := 0; attempt < 5; attempt++ {
			if d := retryJitter(base, attempt, rng); d != 0 {
				t.Fatalf("base %v attempt %d: backoff %v, want 0", base, attempt, d)
			}
		}
	}
}

// TestRemoteProveVerify drives the remote mode end to end against an
// in-process zkserve handler: prove writes a proof file, verify accepts
// it, and a wrong public input is rejected.
func TestRemoteProveVerify(t *testing.T) {
	svc := provesvc.New(provesvc.WithWorkers(1), provesvc.WithSeed(7), provesvc.WithTelemetry(nil))
	svc.Start()
	defer svc.Shutdown(context.Background())
	srv := httptest.NewServer(provesvc.NewHandler(svc))
	defer srv.Close()

	dir := t.TempDir()
	circuitPath := filepath.Join(dir, "c.zkc")
	proofPath := filepath.Join(dir, "c.proof")
	if err := cmdGen([]string{"-e", "16", "-o", circuitPath}); err != nil {
		t.Fatalf("gen: %v", err)
	}
	if err := cmdProve([]string{"-addr", srv.URL, "-circuit", circuitPath,
		"-proof", proofPath, "-input", "x=3"}); err != nil {
		t.Fatalf("remote prove: %v", err)
	}
	// 3^16 = 43046721 is the circuit's lone public output.
	if err := cmdVerify([]string{"-addr", srv.URL, "-circuit", circuitPath,
		"-proof", proofPath, "-public", "43046721"}); err != nil {
		t.Fatalf("remote verify: %v", err)
	}
	if err := cmdVerify([]string{"-addr", srv.URL, "-circuit", circuitPath,
		"-proof", proofPath, "-public", "42"}); err == nil {
		t.Fatal("remote verify accepted a wrong public input")
	}
}
