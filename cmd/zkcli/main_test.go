package main

import (
	"os"
	"path/filepath"
	"testing"

	"zkperf/internal/curve"
)

// TestPipelineEndToEnd drives the full file-based workflow through the
// command implementations: gen → compile → setup → witness → prove →
// verify, matching how the paper drives circom/snarkjs from the shell.
func TestPipelineEndToEnd(t *testing.T) {
	dir := t.TempDir()
	p := func(name string) string { return filepath.Join(dir, name) }

	if err := cmdGen([]string{"-e", "32", "-o", p("c.zkc")}); err != nil {
		t.Fatalf("gen: %v", err)
	}
	if err := cmdCompile([]string{"-circuit", p("c.zkc"), "-r1cs", p("c.r1cs"), "-prog", p("c.prog")}); err != nil {
		t.Fatalf("compile: %v", err)
	}
	if err := cmdSetup([]string{"-r1cs", p("c.r1cs"), "-pk", p("c.pk"), "-vk", p("c.vk"), "-seed", "1"}); err != nil {
		t.Fatalf("setup: %v", err)
	}
	if err := cmdWitness([]string{"-r1cs", p("c.r1cs"), "-prog", p("c.prog"), "-input", "x=7", "-wtns", p("c.wtns")}); err != nil {
		t.Fatalf("witness: %v", err)
	}
	if err := cmdProve([]string{"-r1cs", p("c.r1cs"), "-pk", p("c.pk"), "-wtns", p("c.wtns"), "-proof", p("c.proof"), "-seed", "2"}); err != nil {
		t.Fatalf("prove: %v", err)
	}
	if err := cmdVerify([]string{"-vk", p("c.vk"), "-wtns", p("c.wtns"), "-proof", p("c.proof")}); err != nil {
		t.Fatalf("verify: %v", err)
	}

	// Proof artifact should be succinct.
	fi, err := os.Stat(p("c.proof"))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() > 512 {
		t.Errorf("proof file is %d bytes, expected a few hundred", fi.Size())
	}
}

// TestPipelinePlonk drives the same file workflow through -backend plonk:
// universal setup, bridge preprocessing on pk load, and a larger (but
// still constant-size) proof.
func TestPipelinePlonk(t *testing.T) {
	dir := t.TempDir()
	p := func(name string) string { return filepath.Join(dir, name) }
	args := func(extra ...string) []string { return append(extra, "-backend", "plonk") }

	if err := cmdGen([]string{"-e", "32", "-o", p("c.zkc")}); err != nil {
		t.Fatalf("gen: %v", err)
	}
	if err := cmdCompile([]string{"-circuit", p("c.zkc"), "-r1cs", p("c.r1cs"), "-prog", p("c.prog")}); err != nil {
		t.Fatalf("compile: %v", err)
	}
	if err := cmdSetup(args("-r1cs", p("c.r1cs"), "-pk", p("c.pk"), "-vk", p("c.vk"), "-seed", "1")); err != nil {
		t.Fatalf("setup: %v", err)
	}
	if err := cmdWitness([]string{"-r1cs", p("c.r1cs"), "-prog", p("c.prog"), "-input", "x=7", "-wtns", p("c.wtns")}); err != nil {
		t.Fatalf("witness: %v", err)
	}
	if err := cmdProve(args("-r1cs", p("c.r1cs"), "-pk", p("c.pk"), "-wtns", p("c.wtns"), "-proof", p("c.proof"), "-seed", "2")); err != nil {
		t.Fatalf("prove: %v", err)
	}
	if err := cmdVerify(args("-vk", p("c.vk"), "-wtns", p("c.wtns"), "-proof", p("c.proof"))); err != nil {
		t.Fatalf("verify: %v", err)
	}

	// PLONK proofs are bigger than Groth16's three points but still
	// constant-size: 9 commitments + 16 scalars, well under 4 KiB.
	fi, err := os.Stat(p("c.proof"))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() <= 512 || fi.Size() > 4096 {
		t.Errorf("plonk proof file is %d bytes, expected ~1 KiB", fi.Size())
	}

	// The plonk proof must not verify under the groth16 backend (the
	// artifacts are in a different serialization entirely).
	if err := cmdVerify([]string{"-vk", p("c.vk"), "-wtns", p("c.wtns"), "-proof", p("c.proof")}); err == nil {
		t.Error("plonk artifacts accepted by groth16 verify")
	}
}

func TestBackendsListAndUnknown(t *testing.T) {
	if err := cmdBackends(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := getBackend("stark", curve.NewCurve("bn128"), 1); err == nil {
		t.Error("unknown backend accepted")
	}
}

func TestPipelineBLS(t *testing.T) {
	if testing.Short() {
		t.Skip("BLS pipeline is slow")
	}
	dir := t.TempDir()
	p := func(name string) string { return filepath.Join(dir, name) }
	args := func(extra ...string) []string { return append(extra, "-curve", "bls12-381") }

	if err := cmdGen([]string{"-e", "16", "-o", p("c.zkc")}); err != nil {
		t.Fatal(err)
	}
	if err := cmdCompile(args("-circuit", p("c.zkc"), "-r1cs", p("c.r1cs"), "-prog", p("c.prog"))); err != nil {
		t.Fatal(err)
	}
	if err := cmdSetup(args("-r1cs", p("c.r1cs"), "-pk", p("c.pk"), "-vk", p("c.vk"), "-seed", "3")); err != nil {
		t.Fatal(err)
	}
	if err := cmdWitness(args("-r1cs", p("c.r1cs"), "-prog", p("c.prog"), "-input", "x=2", "-wtns", p("c.wtns"))); err != nil {
		t.Fatal(err)
	}
	if err := cmdProve(args("-r1cs", p("c.r1cs"), "-pk", p("c.pk"), "-wtns", p("c.wtns"), "-proof", p("c.proof"), "-seed", "4")); err != nil {
		t.Fatal(err)
	}
	if err := cmdVerify(args("-vk", p("c.vk"), "-wtns", p("c.wtns"), "-proof", p("c.proof"))); err != nil {
		t.Fatal(err)
	}
}

func TestWitnessRejectsBadInputs(t *testing.T) {
	dir := t.TempDir()
	p := func(name string) string { return filepath.Join(dir, name) }
	if err := cmdGen([]string{"-e", "8", "-o", p("c.zkc")}); err != nil {
		t.Fatal(err)
	}
	if err := cmdCompile([]string{"-circuit", p("c.zkc"), "-r1cs", p("c.r1cs"), "-prog", p("c.prog")}); err != nil {
		t.Fatal(err)
	}
	// Missing input.
	if err := cmdWitness([]string{"-r1cs", p("c.r1cs"), "-prog", p("c.prog"), "-wtns", p("c.wtns")}); err == nil {
		t.Error("missing input accepted")
	}
	// Malformed input syntax.
	if err := cmdWitness([]string{"-r1cs", p("c.r1cs"), "-prog", p("c.prog"), "-input", "x:7", "-wtns", p("c.wtns")}); err == nil {
		t.Error("malformed -input accepted")
	}
	// Unparseable value.
	if err := cmdWitness([]string{"-r1cs", p("c.r1cs"), "-prog", p("c.prog"), "-input", "x=banana", "-wtns", p("c.wtns")}); err == nil {
		t.Error("garbage value accepted")
	}
}

func TestVerifyRejectsWrongArtifacts(t *testing.T) {
	dir := t.TempDir()
	p := func(name string) string { return filepath.Join(dir, name) }
	// Build two separate pipelines and cross-verify.
	build := func(prefix, x string, seed string) {
		if err := cmdGen([]string{"-e", "16", "-o", p(prefix + ".zkc")}); err != nil {
			t.Fatal(err)
		}
		if err := cmdCompile([]string{"-circuit", p(prefix + ".zkc"), "-r1cs", p(prefix + ".r1cs"), "-prog", p(prefix + ".prog")}); err != nil {
			t.Fatal(err)
		}
		if err := cmdSetup([]string{"-r1cs", p(prefix + ".r1cs"), "-pk", p(prefix + ".pk"), "-vk", p(prefix + ".vk"), "-seed", seed}); err != nil {
			t.Fatal(err)
		}
		if err := cmdWitness([]string{"-r1cs", p(prefix + ".r1cs"), "-prog", p(prefix + ".prog"), "-input", "x=" + x, "-wtns", p(prefix + ".wtns")}); err != nil {
			t.Fatal(err)
		}
		if err := cmdProve([]string{"-r1cs", p(prefix + ".r1cs"), "-pk", p(prefix + ".pk"), "-wtns", p(prefix + ".wtns"), "-proof", p(prefix + ".proof"), "-seed", "9"}); err != nil {
			t.Fatal(err)
		}
	}
	build("a", "7", "1")
	build("b", "5", "2")
	// Proof from pipeline a against witness of pipeline b must fail.
	if err := cmdVerify([]string{"-vk", p("a.vk"), "-wtns", p("b.wtns"), "-proof", p("a.proof")}); err == nil {
		t.Error("cross-witness verification succeeded")
	}
	// Proof under the wrong key must fail.
	if err := cmdVerify([]string{"-vk", p("b.vk"), "-wtns", p("a.wtns"), "-proof", p("a.proof")}); err == nil {
		t.Error("wrong-key verification succeeded")
	}
}

func TestUnknownCurve(t *testing.T) {
	if _, err := getCurve("p256"); err == nil {
		t.Error("unknown curve accepted")
	}
}
