// Command zkload is the serving-layer load harness: an open/closed-loop
// request generator with Zipf-distributed circuit popularity, warmup and
// measurement windows, and latency-percentile output — the experiment
// driver behind the throughput-vs-p99 curves in EXPERIMENTS.md, in the
// spirit of ddtxn's bm.py driver (hot keys, skew sweeps, phase knobs).
//
// It drives a real zkserve (or the zkgateway) over HTTP:
//
//	zkload -addr http://localhost:8090 -clients 8 -zipf 1.0 \
//	       -circuits 16 -warmup 2s -measure 10s
//
// or spins up an in-process zkserve on a loopback port so CI and
// single-command experiments need no separate server:
//
//	zkload -inproc -inproc-workers 4 -requests 300 -zipf 1.0
//
// Closed loop (default): -clients goroutines each keep exactly one
// request outstanding — throughput is what the service sustains.
// Open loop: -rate R dispatches requests on a Poisson-free fixed clock
// regardless of completions — latency under offered load, the honest
// way to find the knee of the throughput-vs-p99 curve. -sweep runs the
// open loop at several rates in one invocation, printing one result
// line per rate.
//
// Requests draw from -circuits distinct circuits with Zipf(s=-zipf)
// popularity: rank 0 is the hot circuit, the tail is cold. Per-rank
// latency splits in the report make the scheduler's hot/cold behavior
// visible directly.
//
// -async switches the harness to the async job API: each request is a
// POST /v1/jobs submit followed by polling (every -poll) until the job
// is terminal, with latency measured submit → completion. This is the
// mode the crash-restart drill (scripts/e2e_crash.sh) uses — pollers
// ride out a server restart instead of failing the sample on the first
// refused connection.
//
// Output is stable, grep-friendly "zkload: key=value" lines; exit
// status is nonzero when the measurement window completes zero
// successful proofs.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"zkperf/internal/circuit"
	"zkperf/internal/provesvc"
)

// zipfDist is a bounded discrete Zipf sampler: p(k) ∝ 1/(k+1)^s over
// ranks [0, n). Hand-rolled (CDF + binary search) because math/rand's
// Zipf requires s > 1 while load studies conventionally use s = 1.0.
type zipfDist struct{ cdf []float64 }

func newZipf(n int, s float64) *zipfDist {
	w := make([]float64, n)
	var total float64
	for k := 0; k < n; k++ {
		w[k] = 1 / math.Pow(float64(k+1), s)
		total += w[k]
	}
	cdf := make([]float64, n)
	var c float64
	for k := range w {
		c += w[k] / total
		cdf[k] = c
	}
	cdf[n-1] = 1 // guard against float drift at the tail
	return &zipfDist{cdf}
}

func (z *zipfDist) sample(r *rand.Rand) int {
	return sort.SearchFloat64s(z.cdf, r.Float64())
}

// sample is one measured request.
type sample struct {
	rank int
	lat  time.Duration
}

// recorder collects measured samples and error codes; it only admits
// requests that started inside the measurement window.
type recorder struct {
	mu      sync.Mutex
	samples []sample
	errs    map[string]int
}

func (r *recorder) ok(rank int, lat time.Duration) {
	r.mu.Lock()
	r.samples = append(r.samples, sample{rank, lat})
	r.mu.Unlock()
}

func (r *recorder) err(code string) {
	r.mu.Lock()
	if r.errs == nil {
		r.errs = map[string]int{}
	}
	r.errs[code]++
	r.mu.Unlock()
}

func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(p*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func ms(d time.Duration) float64 { return float64(d) / 1e6 }

// latLine formats one "latency_ms" report line over a sample subset.
func latLine(label string, lats []time.Duration) string {
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	if len(lats) == 0 {
		return fmt.Sprintf("zkload: latency_ms %s n=0", label)
	}
	return fmt.Sprintf("zkload: latency_ms %s n=%d p50=%.1f p90=%.1f p95=%.1f p99=%.1f max=%.1f",
		label, len(lats),
		ms(percentile(lats, 0.50)), ms(percentile(lats, 0.90)),
		ms(percentile(lats, 0.95)), ms(percentile(lats, 0.99)),
		ms(lats[len(lats)-1]))
}

// loadgen is the shared state of one measurement run.
type loadgen struct {
	base     string
	client   *http.Client
	backend  string
	sources  []string // rank → circuit source
	zipf     *zipfDist
	rec      *recorder
	measure0 time.Time // samples starting before this are warmup
	deadline time.Time
	budget   int64 // 0: unbounded; else total request cap
	churn    bool  // cold ranks are one-off circuits (fresh cache key each)
	async    bool  // drive POST /v1/jobs + poll instead of sync /v1/prove
	poll     time.Duration
	issued   atomic.Int64
	nonce    atomic.Int64
	inflight atomic.Int64
}

// take claims one request slot, or false when the budget or the clock
// has run out.
func (g *loadgen) take() bool {
	if !time.Now().Before(g.deadline) {
		return false
	}
	if g.budget > 0 && g.issued.Add(1) > g.budget {
		return false
	}
	return true
}

// fire issues one prove for the given rank and records the outcome if
// the request started inside the measurement window. Under -churn,
// cold ranks get a unique source per request (a nonce comment changes
// the cache key, not the constraint system), so every cold request pays
// the full compile+setup a one-off circuit pays in production.
func (g *loadgen) fire(rank int) {
	if g.async {
		g.fireAsync(rank)
		return
	}
	src := g.sources[rank]
	if g.churn && rank > 0 {
		src = fmt.Sprintf("// one-off %d\n%s", g.nonce.Add(1), src)
	}
	body, _ := json.Marshal(map[string]any{
		"circuit": src,
		"backend": g.backend,
		"inputs":  map[string]string{"x": "2"},
	})
	start := time.Now()
	resp, err := g.client.Post(g.base+"/v1/prove", "application/json", bytes.NewReader(body))
	measured := !start.Before(g.measure0)
	if err != nil {
		if measured {
			g.rec.err("transport")
		}
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		if measured {
			g.rec.ok(rank, time.Since(start))
		}
		return
	}
	var env struct {
		Code string `json:"code"`
	}
	json.NewDecoder(resp.Body).Decode(&env)
	if env.Code == "" {
		env.Code = "http_" + strconv.Itoa(resp.StatusCode)
	}
	if measured {
		g.rec.err(env.Code)
	}
}

// fireAsync drives one prove through the async job API: submit, then
// poll every g.poll until the job is terminal. Latency is submit →
// observed completion, so manager queue wait is included — the delay an
// async client actually experiences. Polling deliberately ignores the
// server's coarse 1s Retry-After pacing hint (meant for humans and
// CLIs, too slow for a load generator) and rides out transport errors —
// the crash drill restarts the server mid-poll.
func (g *loadgen) fireAsync(rank int) {
	src := g.sources[rank]
	if g.churn && rank > 0 {
		src = fmt.Sprintf("// one-off %d\n%s", g.nonce.Add(1), src)
	}
	body, _ := json.Marshal(map[string]any{
		"kind":    "prove",
		"circuit": src,
		"backend": g.backend,
		"inputs":  map[string]string{"x": "2"},
	})
	start := time.Now()
	measured := !start.Before(g.measure0)
	resp, err := g.client.Post(g.base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		if measured {
			g.rec.err("transport")
		}
		return
	}
	var sub struct {
		ID   string `json:"id"`
		Code string `json:"code"` // error envelope on a rejected submit
	}
	decErr := json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		code := sub.Code
		if code == "" {
			code = "http_" + strconv.Itoa(resp.StatusCode)
		}
		if measured {
			g.rec.err(code)
		}
		return
	}
	if decErr != nil || sub.ID == "" {
		if measured {
			g.rec.err("bad_job_reply")
		}
		return
	}
	// Jobs accepted near the deadline still get a grace window to finish;
	// a poller that outlives it books poll_timeout rather than spinning
	// forever.
	grace := g.deadline.Add(30 * time.Second)
	for {
		state, code, ok := g.pollJob(sub.ID)
		if ok {
			switch state {
			case "done":
				if measured {
					g.rec.ok(rank, time.Since(start))
				}
				return
			case "failed":
				if measured {
					g.rec.err(code)
				}
				return
			}
		}
		if !time.Now().Before(grace) {
			if measured {
				g.rec.err("poll_timeout")
			}
			return
		}
		time.Sleep(g.poll)
	}
}

// pollJob fetches one job's state; code carries the failure envelope
// for failed (or evicted) jobs. ok is false on transport or decode
// trouble — the caller keeps polling, the server may be restarting.
func (g *loadgen) pollJob(id string) (state, code string, ok bool) {
	resp, err := g.client.Get(g.base + "/v1/jobs/" + id)
	if err != nil {
		return "", "", false
	}
	defer resp.Body.Close()
	var st struct {
		State string `json:"state"`
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
		Code string `json:"code"` // top-level envelope (e.g. 404 job_not_found)
	}
	if json.NewDecoder(resp.Body).Decode(&st) != nil {
		return "", "", false
	}
	if resp.StatusCode != http.StatusOK {
		code = st.Code
		if code == "" {
			code = "http_" + strconv.Itoa(resp.StatusCode)
		}
		return "failed", code, true
	}
	code = st.Error.Code
	if st.State == "failed" && code == "" {
		code = "job_failed"
	}
	return st.State, code, true
}

// runClosed keeps `clients` requests outstanding until the deadline or
// budget is exhausted.
func (g *loadgen) runClosed(clients int, seed int64) {
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(c)))
			for g.take() {
				g.fire(g.zipf.sample(rng))
			}
		}(c)
	}
	wg.Wait()
}

// runOpen dispatches requests at a fixed rate regardless of completions
// (each arrival gets its own goroutine), so queueing delay shows up in
// latency instead of throttling the generator.
func (g *loadgen) runOpen(rate float64, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	tick := time.NewTicker(time.Duration(float64(time.Second) / rate))
	defer tick.Stop()
	var wg sync.WaitGroup
	for g.take() {
		rank := g.zipf.sample(rng)
		wg.Add(1)
		g.inflight.Add(1)
		go func() {
			defer wg.Done()
			defer g.inflight.Add(-1)
			g.fire(rank)
		}()
		<-tick.C
	}
	wg.Wait()
}

// report prints the stable result lines and returns the number of
// successful proofs in the window.
func (g *loadgen) report(elapsed time.Duration) int {
	g.rec.mu.Lock()
	samples := append([]sample(nil), g.rec.samples...)
	errs := make(map[string]int, len(g.rec.errs))
	for k, v := range g.rec.errs {
		errs[k] = v
	}
	g.rec.mu.Unlock()

	var all, hot, cold []time.Duration
	for _, s := range samples {
		all = append(all, s.lat)
		if s.rank == 0 {
			hot = append(hot, s.lat)
		} else {
			cold = append(cold, s.lat)
		}
	}
	nerr := 0
	for _, n := range errs {
		nerr += n
	}
	fmt.Printf("zkload: result ok=%d err=%d elapsed=%.1fs throughput=%.2f req/s\n",
		len(all), nerr, elapsed.Seconds(), float64(len(all))/elapsed.Seconds())
	fmt.Println(latLine("all ", all))
	fmt.Println(latLine("hot ", hot))
	fmt.Println(latLine("cold", cold))
	codes := make([]string, 0, len(errs))
	for c := range errs {
		codes = append(codes, c)
	}
	sort.Strings(codes)
	for _, c := range codes {
		fmt.Printf("zkload: errors code=%s n=%d\n", c, errs[c])
	}
	return len(all)
}

// schedLine fetches /v1/stats and prints the scheduler's view of the
// run (hot set, reservations, thread grants) for correlation.
func schedLine(client *http.Client, base string) {
	resp, err := client.Get(base + "/v1/stats")
	if err != nil {
		return
	}
	defer resp.Body.Close()
	var st struct {
		Sched provesvc.SchedStats `json:"sched"`
	}
	if json.NewDecoder(resp.Body).Decode(&st) != nil {
		return
	}
	s := st.Sched
	fmt.Printf("zkload: sched enabled=%v hot=%d reserved=%d/%d promotions=%d demotions=%d grant_p50=%d drain=%.1f/s\n",
		s.Enabled, s.HotCount, s.ReservedWorkers, s.Workers,
		s.Promotions, s.Demotions, s.ThreadGrant.P50, s.DrainRatePerSec)
}

func main() {
	addr := flag.String("addr", "", "target base URL (e.g. http://localhost:8090); empty requires -inproc")
	backendName := flag.String("backend", "groth16", "proving backend to request")
	clients := flag.Int("clients", 8, "closed-loop concurrency (one outstanding request each)")
	rate := flag.Float64("rate", 0, "open-loop arrival rate in req/s (0: closed loop)")
	sweep := flag.String("sweep", "", "comma-separated open-loop rates to sweep, e.g. 5,10,20,40")
	zipfS := flag.Float64("zipf", 1.0, "Zipf skew s over circuit ranks (p(k) ∝ 1/(k+1)^s)")
	ncirc := flag.Int("circuits", 16, "number of distinct circuits (rank 0 is the hot one)")
	size := flag.Int("size", 16, "base circuit size (rank k proves Exponentiate(size+k))")
	coldSize := flag.Int("cold-size", 0, "size of cold-rank circuits (0: size+k) — model a light hot circuit amid heavier one-offs")
	warmup := flag.Duration("warmup", 2*time.Second, "warmup window excluded from the report")
	measure := flag.Duration("measure", 10*time.Second, "measurement window per run")
	requests := flag.Int64("requests", 0, "stop after this many requests (0: time-bounded only)")
	churn := flag.Bool("churn", false, "cold ranks are one-off circuits: each request gets a fresh cache key and pays compile+setup")
	async := flag.Bool("async", false, "drive POST /v1/jobs + poll-until-done instead of synchronous /v1/prove")
	pollIv := flag.Duration("poll", 50*time.Millisecond, "job status poll interval in -async mode")
	seed := flag.Int64("seed", 1, "workload RNG seed")
	inproc := flag.Bool("inproc", false, "spin up an in-process zkserve on a loopback port")
	inprocWorkers := flag.Int("inproc-workers", 4, "in-process service worker pool size")
	inprocQueue := flag.Int("inproc-queue", 256, "in-process service queue depth")
	inprocSched := flag.Bool("inproc-sched", true, "enable workload-aware scheduling on the in-process service")
	inprocBudget := flag.Int("inproc-sched-budget", 0, "in-process scheduler thread budget (0: GOMAXPROCS)")
	flag.Parse()

	if *ncirc < 1 || *clients < 1 {
		log.Fatal("zkload: -circuits and -clients must be >= 1")
	}

	base := *addr
	var svc *provesvc.Service
	if *inproc {
		svc = provesvc.New(
			provesvc.WithWorkers(*inprocWorkers),
			provesvc.WithQueueDepth(*inprocQueue),
			provesvc.WithSeed(uint64(*seed)),
			provesvc.WithWorkloadSched(provesvc.WorkloadConfig{
				Enabled:      *inprocSched,
				ThreadBudget: *inprocBudget,
				HalfLife:     5 * time.Second,
				Reclassify:   100 * time.Millisecond,
			}),
		)
		svc.Start()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatalf("zkload: loopback listen: %v", err)
		}
		srv := &http.Server{Handler: provesvc.NewHandler(svc)}
		go srv.Serve(ln)
		base = "http://" + ln.Addr().String()
		defer func() {
			srv.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			svc.Shutdown(ctx)
		}()
		fmt.Printf("zkload: inproc zkserve at %s (workers=%d queue=%d sched=%v)\n",
			base, *inprocWorkers, *inprocQueue, *inprocSched)
	}
	if base == "" {
		log.Fatal("zkload: set -addr or -inproc")
	}
	base = strings.TrimRight(base, "/")

	sources := make([]string, *ncirc)
	for k := range sources {
		if k > 0 && *coldSize > 0 {
			sources[k] = circuit.ExponentiateSource(*coldSize + k)
		} else {
			sources[k] = circuit.ExponentiateSource(*size + k)
		}
	}
	httpc := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        4096,
		MaxIdleConnsPerHost: 4096,
	}}

	run := func(rate float64) int {
		g := &loadgen{
			base:     base,
			client:   httpc,
			backend:  *backendName,
			sources:  sources,
			zipf:     newZipf(*ncirc, *zipfS),
			rec:      &recorder{},
			measure0: time.Now().Add(*warmup),
			deadline: time.Now().Add(*warmup + *measure),
			budget:   *requests,
			churn:    *churn,
			async:    *async,
			poll:     *pollIv,
		}
		start := time.Now()
		if rate > 0 {
			g.runOpen(rate, *seed)
		} else {
			g.runClosed(*clients, *seed)
		}
		elapsed := time.Since(start) - *warmup
		if elapsed <= 0 {
			elapsed = time.Since(start)
		}
		return g.report(elapsed)
	}

	mode := "closed"
	if *sweep != "" || *rate > 0 {
		mode = "open"
	}
	fmt.Printf("zkload: config mode=%s target=%s backend=%s zipf=%.2f circuits=%d size=%d clients=%d warmup=%v measure=%v requests=%d churn=%v async=%v\n",
		mode, base, *backendName, *zipfS, *ncirc, *size, *clients, *warmup, *measure, *requests, *churn, *async)
	if *coldSize > 0 {
		fmt.Printf("zkload: config cold_size=%d (heterogeneous: hot=%d constraints, cold=%d+)\n", *coldSize, *size, *coldSize)
	}

	total := 0
	if *sweep != "" {
		for _, f := range strings.Split(*sweep, ",") {
			r, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil || r <= 0 {
				log.Fatalf("zkload: bad -sweep rate %q", f)
			}
			fmt.Printf("zkload: sweep rate=%.1f req/s\n", r)
			total += run(r)
		}
	} else {
		total += run(*rate)
	}
	schedLine(httpc, base)

	if total == 0 {
		fmt.Println("zkload: FAIL no successful proofs in the measurement window")
		os.Exit(1)
	}
}
