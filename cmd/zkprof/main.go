// Command zkprof profiles a single zk-SNARK stage with one of the paper's
// four analyses, on one modeled CPU:
//
//	zkprof -stage proving -analysis topdown -cpu i9-13900K -curve BN128 -logn 12
//
// Analyses: topdown, memory, code, opcode, scaling.
package main

import (
	"flag"
	"fmt"
	"os"

	"zkperf/internal/core"
	"zkperf/internal/cpumodel"
	"zkperf/internal/report"
)

func main() {
	stage := flag.String("stage", "proving", "stage: compile|setup|witness|proving|verifying")
	analysis := flag.String("analysis", "topdown", "analysis: topdown|memory|code|opcode|scaling")
	cpuName := flag.String("cpu", "i9-13900K", "CPU model: i7-8650U|i5-11400|i9-13900K")
	curveName := flag.String("curve", "BN128", "curve: BN128|BLS12-381")
	logN := flag.Int("logn", 12, "log2 of the constraint count")
	flag.Parse()

	if err := run(*stage, *analysis, *cpuName, *curveName, *logN); err != nil {
		fmt.Fprintf(os.Stderr, "zkprof: %v\n", err)
		os.Exit(1)
	}
}

func run(stageName, analysis, cpuName, curveName string, logN int) error {
	var stage core.Stage
	for _, s := range core.Stages {
		if string(s) == stageName {
			stage = s
		}
	}
	if stage == "" {
		return fmt.Errorf("unknown stage %q", stageName)
	}
	cpu := cpumodel.ByName(cpuName)
	if cpu == nil {
		return fmt.Errorf("unknown CPU %q", cpuName)
	}

	runner := core.NewRunner()
	fmt.Fprintf(os.Stderr, "profiling %s stage (%s, 2^%d constraints)...\n", stage, curveName, logN)
	p, err := runner.ProfileStage(curveName, logN, stage)
	if err != nil {
		return err
	}
	fmt.Printf("stage %s: wall time %.1f ms, %d modeled instructions\n\n",
		stage, p.WallSeconds()*1000, p.Mix.Total())

	switch analysis {
	case "topdown":
		cr := core.SimulateCaches(p, cpu)
		b := core.TopDown(p, cpu, cr)
		t := &report.Table{
			Title:   fmt.Sprintf("Top-down breakdown on %s", cpu.Name),
			Headers: []string{"FrontEnd%", "BadSpec%", "BackEnd%", "(mem%)", "(core%)", "Retiring%", "Dominant"},
		}
		t.AddRow(report.F1(b.FrontEnd), report.F1(b.BadSpec), report.F1(b.BackEnd),
			report.F1(b.BackEndMemory), report.F1(b.BackEndCore), report.F1(b.Retiring), b.Dominant())
		fmt.Println(t)
	case "memory":
		cr := core.SimulateCaches(p, cpu)
		m := core.Memory(p, cpu, cr)
		t := &report.Table{
			Title:   fmt.Sprintf("Memory analysis on %s", cpu.Name),
			Headers: []string{"Loads", "Stores", "LLC MPKI", "Max BW (GBps)"},
		}
		t.AddRow(report.SI(m.Loads), report.SI(m.Stores), report.F(m.MPKI), report.F(m.MaxBWGBps))
		fmt.Println(t)
	case "code":
		t := &report.Table{
			Title:   "Function-level profile",
			Headers: []string{"Function", "CPU time %"},
		}
		for _, f := range core.HotFunctions(p) {
			t.AddRow(f.Name, report.F1(f.Percent))
		}
		fmt.Println(t)
	case "opcode":
		c, ctl, d := core.OpcodeMix(p)
		t := &report.Table{
			Title:   "Instruction-level opcode mix",
			Headers: []string{"Compute%", "Control%", "Data%", "Category"},
		}
		t.AddRow(report.F(c), report.F(ctl), report.F(d), core.OpcodeDominant(p))
		fmt.Println(t)
	case "scaling":
		threads := []int{1, 2, 4, 6, 8, 12, 16, 18, 24, 32}
		sp := core.StrongScaling(p, cpu, threads)
		ch := &report.Chart{
			Title:  fmt.Sprintf("Strong scaling of %s on %s", stage, cpu.Name),
			XLabel: "threads",
		}
		for _, n := range threads {
			ch.XTicks = append(ch.XTicks, fmt.Sprintf("%d", n))
		}
		ch.Series = append(ch.Series, report.Series{Name: string(stage), Values: sp})
		fmt.Println(ch)
		fit := core.FitStrong(threads, sp)
		fmt.Printf("Amdahl fit: %.1f%% serial / %.1f%% parallel\n", fit.SerialPct, fit.ParallelPct)
	default:
		return fmt.Errorf("unknown analysis %q", analysis)
	}
	return nil
}
