// Command zkbench regenerates every table and figure of the paper's
// evaluation section ("Performance Analysis of Zero-Knowledge Proofs",
// IISWC 2024): the execution-time breakdown, the top-down
// microarchitecture analysis (Fig. 4), the memory analysis (Fig. 5,
// Tables II–III), the code analysis (Tables IV–V) and the scalability
// analysis (Figs. 6–7, Table VI).
//
// Usage:
//
//	zkbench [-sweep quick|default|full] [-experiment all|exectime|fig4|
//	        fig5|table2|table3|table4|table5|fig6|fig7|table6]
//
// The default sweep covers 2^10–2^15 constraints on both curves; "full"
// runs the paper's complete 2^10–2^18 range (slow).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"zkperf/internal/core"
	"zkperf/internal/report"
)

func main() {
	sweep := flag.String("sweep", "default", "sweep size: quick, default or full")
	exp := flag.String("experiment", "all", "which experiment to run")
	flag.Parse()

	var cfg core.Config
	switch *sweep {
	case "quick":
		cfg = core.QuickConfig()
	case "default":
		cfg = core.DefaultConfig()
	case "full":
		cfg = core.FullConfig()
	default:
		fmt.Fprintf(os.Stderr, "zkbench: unknown sweep %q\n", *sweep)
		os.Exit(2)
	}

	printTableI(cfg)
	suite := core.NewSuite(cfg)
	start := time.Now()
	if err := run(suite, *exp); err != nil {
		fmt.Fprintf(os.Stderr, "zkbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\nTotal harness time: %v\n", time.Since(start).Round(time.Millisecond))
}

// printTableI renders the hardware configuration of the modeled testbed
// (the paper's Table I).
func printTableI(cfg core.Config) {
	t := &report.Table{
		Title:   "Table I — Modeled hardware configuration",
		Headers: []string{"CPU", "#Cores(P)", "#Cores(E)", "#SMT", "DRAM", "Type", "#Ch", "Mem BW", "LLC", "nodejs"},
	}
	for _, c := range cfg.CPUs {
		t.AddRow(c.Name,
			fmt.Sprintf("%d", c.PerfCores), fmt.Sprintf("%d", c.EffCores),
			fmt.Sprintf("%d", c.SMT), fmt.Sprintf("%d GB", c.DRAMGBytes), c.DRAMType,
			fmt.Sprintf("%d", c.DRAMChans), fmt.Sprintf("%.1f GB/s", c.MemBWGBps),
			fmt.Sprintf("%d MiB", c.LLC.SizeBytes>>20), c.NodeJS)
	}
	fmt.Println(t)
}

func run(s *core.Suite, exp string) error {
	want := func(name string) bool { return exp == "all" || exp == name }
	printed := false
	section := func(fn func() error) error {
		printed = true
		return fn()
	}

	if want("exectime") {
		if err := section(func() error {
			t, err := s.ExecTimeBreakdown()
			if err != nil {
				return err
			}
			fmt.Println(t)
			return nil
		}); err != nil {
			return err
		}
	}
	if want("fig4") {
		if err := section(func() error {
			ts, err := s.Fig4TopDown()
			if err != nil {
				return err
			}
			for _, t := range ts {
				fmt.Println(t)
			}
			return nil
		}); err != nil {
			return err
		}
	}
	if want("fig5") {
		if err := section(func() error {
			t, err := s.Fig5LoadsStores()
			if err != nil {
				return err
			}
			fmt.Println(t)
			return nil
		}); err != nil {
			return err
		}
	}
	if want("table2") {
		if err := section(func() error {
			t, err := s.Table2MPKI()
			if err != nil {
				return err
			}
			fmt.Println(t)
			return nil
		}); err != nil {
			return err
		}
	}
	if want("table3") {
		if err := section(func() error {
			t, err := s.Table3Bandwidth()
			if err != nil {
				return err
			}
			fmt.Println(t)
			return nil
		}); err != nil {
			return err
		}
	}
	if want("table4") {
		if err := section(func() error {
			t, err := s.Table4HotFunctions()
			if err != nil {
				return err
			}
			fmt.Println(t)
			return nil
		}); err != nil {
			return err
		}
	}
	if want("table5") {
		if err := section(func() error {
			t, err := s.Table5OpcodeMix()
			if err != nil {
				return err
			}
			fmt.Println(t)
			return nil
		}); err != nil {
			return err
		}
	}
	if want("fig6") {
		if err := section(func() error {
			cs, err := s.Fig6StrongScaling()
			if err != nil {
				return err
			}
			for _, c := range cs {
				fmt.Println(c)
			}
			return nil
		}); err != nil {
			return err
		}
	}
	if want("fig7") {
		if err := section(func() error {
			c, err := s.Fig7WeakScaling()
			if err != nil {
				return err
			}
			fmt.Println(c)
			return nil
		}); err != nil {
			return err
		}
	}
	if want("table6") {
		if err := section(func() error {
			t, err := s.Table6SerialParallel()
			if err != nil {
				return err
			}
			fmt.Println(t)
			return nil
		}); err != nil {
			return err
		}
	}
	if !printed {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}
