#!/bin/sh
# CI gate: formatting and vet first (cheap, catch drift early), then the
# full test suite under the race detector (the mixed-backend worker pool
# and the lock-free telemetry registry must stay race-clean), then two
# one-shot benchmark smokes: the groth16-vs-plonk head-to-head, and the
# telemetry overhead pair (disabled must stay within noise of the
# pre-telemetry prove path — TestDisabledHookOverhead enforces the
# nanosecond-level bound; this prints the full-prove numbers for review).
set -eux

test -z "$(gofmt -l .)"
go build ./...
go vet ./...
go test -race ./...
go test -run '^$' -bench '^BenchmarkBackends$' -benchtime=1x .
go test -run '^$' -bench '^BenchmarkTelemetryOverhead$' -benchtime=1x .
