#!/bin/sh
# CI gate: build everything, vet everything (including internal/backend
# and the reworked provesvc), run the full test suite under the race
# detector (the mixed-backend worker pool must stay race-clean), and
# smoke-run the groth16-vs-plonk benchmark sweep once so the head-to-head
# comparison path cannot rot.
set -eux

go build ./...
go vet ./...
go test -race ./...
go test -run '^$' -bench '^BenchmarkBackends$' -benchtime=1x .
