#!/bin/sh
# CI gate: formatting and vet first (cheap, catch drift early), then the
# full test suite under the race detector (the mixed-backend worker pool
# and the lock-free telemetry registry must stay race-clean), then two
# one-shot benchmark smokes: the groth16-vs-plonk head-to-head, and the
# telemetry overhead pair (disabled must stay within noise of the
# pre-telemetry prove path — TestDisabledHookOverhead enforces the
# nanosecond-level bound; this prints the full-prove numbers for review).
# After that, the robustness gates: an explicit fault-injection pass over
# the provesvc failure paths (panic isolation, breaker, deadlines,
# artifact quarantine), and short fuzz smokes over the wire decoders —
# the surfaces that read attacker-controlled bytes.
set -eux

test -z "$(gofmt -l .)"
go build ./...
go vet ./...
go test -race ./...
go test -run '^$' -bench '^BenchmarkBackends$' -benchtime=1x .
go test -run '^$' -bench '^BenchmarkTelemetryOverhead$' -benchtime=1x .
# Kernel smoke: the 2^10 slice of the NTT/MSM/fixed-base tracking
# benchmark — one iteration per (kernel, curve, thread count) so a kernel
# regression that only shows up off the test sizes still gets exercised in
# CI — plus the pairing primitives (Miller loop, final exponentiation,
# reduced pairing) on both curves.
go test -run '^$' -bench 'BenchmarkKernels/.*/.*/n=2\^10' -benchtime=1x .
go test -run '^$' -bench 'BenchmarkKernels/pairing' -benchtime=1x .
# Batched-verify smoke: the folded multi-pairing's per-proof cost at
# n=64 against the n=1 baseline (the ≥3× amortization target lives in
# the benchmark's us/proof metric; one iteration keeps CI honest).
go test -run '^$' -bench 'BenchmarkVerifyBatch/n=(1|64)$' -benchtime=1x .
go test -race -count=1 \
    -run 'TestPanicMidProve|TestArtifact|TestBreaker|TestDeadline|TestMaxTimeout|TestDrainWithExpiring|TestHTTPErrorCodes' \
    ./internal/provesvc/
go test -run '^$' -fuzz '^FuzzReadProof$' -fuzztime=5s ./internal/backend/
go test -run '^$' -fuzz '^FuzzReadProvingKey$' -fuzztime=5s ./internal/backend/
go test -run '^$' -fuzz '^FuzzReadVerifyingKey$' -fuzztime=5s ./internal/backend/
# The job-journal WAL decoder reads whatever a crash left on disk —
# attacker-grade bytes as far as replay is concerned (lying length
# prefixes, torn frames, bit rot).
go test -run '^$' -fuzz '^FuzzJournalDecode$' -fuzztime=5s ./internal/jobs/
# Cluster smoke: two zkserve nodes behind zkgateway over real loopback
# sockets — async jobs complete, routing stays shard-stable (per-node
# setup counters stop growing), and killing a node fails its shard over.
sh scripts/e2e_cluster.sh
# Durability chaos drill: a journaled zkserve under zkload -async
# traffic is SIGKILLed mid-job and restarted on the same WAL — accepted
# jobs replay, queued-at-crash work re-executes, Idempotency-Key dedup
# crosses the crash, and an injected torn tail quarantines cleanly.
sh scripts/e2e_crash.sh
# Load-harness smoke: a short closed-loop zkload run against an
# in-process zkserve (Zipf 1.0, a few hundred requests) must finish with
# non-zero throughput (zkload exits 1 on zero successes) and a
# well-formed percentile report.
out="$(go run ./cmd/zkload -inproc -inproc-workers 2 -requests 300 \
    -warmup 0s -measure 60s -circuits 8 -clients 4 -zipf 1.0 -seed 7)"
echo "$out"
echo "$out" | grep -q 'zkload: result ok=300 err=0'
echo "$out" | grep -Eq 'zkload: latency_ms all +n=300 p50=[0-9.]+ p90=[0-9.]+ p95=[0-9.]+ p99=[0-9.]+'
echo "$out" | grep -q 'zkload: sched enabled=true'
