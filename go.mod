module zkperf

go 1.22
