// Quickstart: prove knowledge of a cube root with Groth16, end to end.
//
// The circuit language (a circom stand-in) declares a private input x and
// a public output y with y = x³; the prover shows they know x such that
// x³ = y without revealing x. This walks the five stages of the paper's
// Figure 1: compile → setup → witness → proving → verifying.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"zkperf/internal/circuit"
	"zkperf/internal/curve"
	"zkperf/internal/ff"
	"zkperf/internal/groth16"
	"zkperf/internal/witness"
)

const src = `
// y = x^3: prove knowledge of a cube root.
circuit CubeRoot {
    private input x;
    public output y;
    var x2 = x * x;
    y <== x2 * x;
}`

func main() {
	c := curve.NewBN254()
	fr := c.Fr

	// Stage 1: compile the circuit source into an R1CS + solver program.
	sys, prog, err := circuit.CompileSource(fr, src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compile:  %d constraints, %d variables\n",
		sys.NumConstraints(), sys.NumVariables())

	// Stage 2: trusted setup — proving and verification keys.
	eng := groth16.NewEngine(c)
	rng := ff.NewRNG(uint64(time.Now().UnixNano()))
	pk, vk, err := eng.Setup(sys, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("setup:    pk with %d G1 elements, vk with %d IC points\n",
		len(pk.A)+len(pk.B1)+len(pk.K)+len(pk.H), len(vk.IC))

	// Stage 3: witness — the prover's secret x = 11, so y = 1331.
	var x ff.Element
	fr.SetUint64(&x, 11)
	w, err := witness.Solve(sys, prog, witness.Assignment{"x": x})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("witness:  public output y = %s\n", fr.String(&w.Public[1]))

	// Stage 4: proving.
	proof, err := eng.Prove(sys, pk, w, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("proving:  done (proof is 2 G1 points + 1 G2 point)")

	// Stage 5: verifying — the verifier sees only y and the proof.
	if err := eng.Verify(vk, proof, w.Public); err != nil {
		log.Fatal(err)
	}
	fmt.Println("verify:   proof accepted ✓")

	// A wrong public value must be rejected.
	bad := make([]ff.Element, len(w.Public))
	copy(bad, w.Public)
	fr.SetUint64(&bad[1], 1332)
	if err := eng.Verify(vk, proof, bad); err != nil {
		fmt.Println("verify:   tampered public input rejected ✓")
	} else {
		log.Fatal("tampered public input was accepted!")
	}
}
