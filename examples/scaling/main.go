// Scaling: a miniature of the paper's scalability analysis. It profiles
// the proving stage once, then replays its measured fork-join structure on
// the simulated i9-13900K at 1–32 threads, prints the Fig. 6-style curve,
// and extracts the serial/parallel split with an Amdahl fit (Table VI).
//
// Run with: go run ./examples/scaling [-logn 12]
package main

import (
	"flag"
	"fmt"
	"log"

	"zkperf/internal/core"
	"zkperf/internal/cpumodel"
	"zkperf/internal/report"
)

func main() {
	logN := flag.Int("logn", 12, "log2 of the constraint count")
	flag.Parse()

	runner := core.NewRunner()
	fmt.Printf("profiling the five stages at 2^%d constraints (BN128)...\n", *logN)
	profiles, err := runner.ProfileAllStages("BN128", *logN)
	if err != nil {
		log.Fatal(err)
	}

	cpu := cpumodel.NewI9_13900K()
	threads := []int{1, 2, 4, 6, 8, 12, 16, 18, 24, 32}

	ch := &report.Chart{
		Title:  fmt.Sprintf("Strong scaling on the simulated %s", cpu.Name),
		XLabel: "threads",
	}
	for _, n := range threads {
		ch.XTicks = append(ch.XTicks, fmt.Sprintf("%d", n))
	}

	t := &report.Table{
		Title:   "Amdahl fit per stage (cf. the paper's Table VI)",
		Headers: []string{"Stage", "Speedup@32", "Serial%", "Parallel%"},
	}
	for _, st := range core.Stages {
		sp := core.StrongScaling(profiles[st], cpu, threads)
		ch.Series = append(ch.Series, report.Series{Name: string(st), Values: sp})
		fit := core.FitStrong(threads, sp)
		t.AddRow(string(st), report.F(sp[len(sp)-1]), report.F1(fit.SerialPct), report.F1(fit.ParallelPct))
	}
	fmt.Println(ch)
	fmt.Println(t)
	fmt.Println("The proving stage scales furthest (MSM windows parallelize);")
	fmt.Println("witness and verifying saturate almost immediately — the paper's Key Takeaway 5.")
}
