// Exponentiate: the paper's benchmark workload (y = x^e), swept over
// constraint sizes with per-stage timing — a miniature of the paper's
// execution-time analysis, using the real Groth16 pipeline on both curves.
//
// Run with: go run ./examples/exponentiate [-max 13]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"zkperf/internal/circuit"
	"zkperf/internal/curve"
	"zkperf/internal/ff"
	"zkperf/internal/groth16"
	"zkperf/internal/report"
	"zkperf/internal/witness"
)

func main() {
	maxLog := flag.Int("max", 12, "largest circuit is 2^max constraints")
	curveName := flag.String("curve", "bn128", "bn128 or bls12-381")
	flag.Parse()

	c := curve.NewCurve(*curveName)
	if c == nil {
		log.Fatalf("unknown curve %q", *curveName)
	}
	fr := c.Fr
	eng := groth16.NewEngine(c)
	rng := ff.NewRNG(42)

	t := &report.Table{
		Title:   fmt.Sprintf("Per-stage wall time on %s (the paper's exponentiation circuit)", c.Name),
		Headers: []string{"Constraints", "compile", "setup", "witness", "proving", "verifying", "proof ok"},
	}

	for logN := 10; logN <= *maxLog; logN++ {
		e := 1 << uint(logN)

		start := time.Now()
		sys, prog, err := circuit.CompileSource(fr, circuit.ExponentiateSource(e))
		if err != nil {
			log.Fatal(err)
		}
		tCompile := time.Since(start)

		start = time.Now()
		pk, vk, err := eng.Setup(sys, rng)
		if err != nil {
			log.Fatal(err)
		}
		tSetup := time.Since(start)

		var x ff.Element
		fr.SetUint64(&x, 3)
		start = time.Now()
		w, err := witness.Solve(sys, prog, witness.Assignment{"x": x})
		if err != nil {
			log.Fatal(err)
		}
		tWitness := time.Since(start)

		start = time.Now()
		proof, err := eng.Prove(sys, pk, w, rng)
		if err != nil {
			log.Fatal(err)
		}
		tProve := time.Since(start)

		start = time.Now()
		verr := eng.Verify(vk, proof, w.Public)
		tVerify := time.Since(start)

		ok := "yes"
		if verr != nil {
			ok = "NO: " + verr.Error()
		}
		t.AddRow(fmt.Sprintf("2^%d", logN),
			tCompile.Round(time.Millisecond).String(),
			tSetup.Round(time.Millisecond).String(),
			tWitness.Round(time.Millisecond).String(),
			tProve.Round(time.Millisecond).String(),
			tVerify.Round(time.Millisecond).String(),
			ok)
	}
	fmt.Println(t)
	fmt.Println("Note how setup and proving grow with the constraint count while")
	fmt.Println("verifying stays constant — the succinctness that motivates zk-SNARKs.")
}
