// Merkle membership: prove that a secret leaf belongs to a Merkle tree
// with a public root, without revealing the leaf or its position — the
// core statement behind private cryptocurrencies like Zcash, which the
// paper cites as zk-SNARKs' flagship application.
//
// The circuit hashes the leaf up a depth-16 authentication path with the
// MiMC permutation (arithmetic-circuit-friendly, unlike SHA-256).
//
// Run with: go run ./examples/merkle
package main

import (
	"fmt"
	"log"
	"time"

	"zkperf/internal/circuit"
	"zkperf/internal/curve"
	"zkperf/internal/ff"
	"zkperf/internal/groth16"
	"zkperf/internal/witness"
)

const (
	depth  = 16
	rounds = 91 // full-strength MiMC
)

func main() {
	c := curve.NewBN254()
	fr := c.Fr

	// Build the membership circuit.
	start := time.Now()
	sys, prog, err := circuit.MerkleCircuit(fr, depth, rounds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("circuit: depth-%d Merkle path, %d constraints (%v)\n",
		depth, sys.NumConstraints(), time.Since(start).Round(time.Millisecond))

	eng := groth16.NewEngine(c)
	rng := ff.NewRNG(uint64(time.Now().UnixNano()))
	start = time.Now()
	pk, vk, err := eng.Setup(sys, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("setup: %v\n", time.Since(start).Round(time.Millisecond))

	// The prover's secret: a leaf and its authentication path. The helper
	// builds a consistent random path and returns the resulting root.
	assign, root := circuit.MerkleAssignment(fr, depth, rounds, 2024)
	fmt.Printf("tree root (public): %s…\n", fr.String(&root)[:24])

	start = time.Now()
	w, err := witness.Solve(sys, prog, assign)
	if err != nil {
		log.Fatal(err)
	}
	if !fr.Equal(&w.Public[1], &root) {
		log.Fatal("circuit root disagrees with the reference computation")
	}
	fmt.Printf("witness: %v\n", time.Since(start).Round(time.Millisecond))

	start = time.Now()
	proof, err := eng.Prove(sys, pk, w, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("prove: %v\n", time.Since(start).Round(time.Millisecond))

	start = time.Now()
	if err := eng.Verify(vk, proof, w.Public); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verify: %v — membership proven without revealing the leaf ✓\n",
		time.Since(start).Round(time.Millisecond))

	// Against a different root the same proof must fail.
	var wrongRoot ff.Element
	fr.SetUint64(&wrongRoot, 12345)
	bad := []ff.Element{w.Public[0], wrongRoot}
	if err := eng.Verify(vk, proof, bad); err == nil {
		log.Fatal("proof accepted for the wrong root!")
	}
	fmt.Println("wrong root rejected ✓")
}
