// PLONK demo: proving the same exponentiation statement under both of the
// proving schemes snarkjs offers — Groth16 and PLONK — and timing them
// side by side. The paper's methodology section picks Groth16 because
// PLONK proving is about twice as slow; this demo reproduces that
// comparison with this repository's own implementations (PLONK uses a
// universal KZG setup; Groth16 needs a per-circuit trusted setup).
//
// Run with: go run ./examples/plonkdemo [-e 1500]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/big"
	"time"

	"zkperf/internal/circuit"
	"zkperf/internal/curve"
	"zkperf/internal/ff"
	"zkperf/internal/groth16"
	"zkperf/internal/plonk"
	"zkperf/internal/witness"
)

func main() {
	e := flag.Int("e", 1500, "exponent (number of multiplications)")
	flag.Parse()

	c := curve.NewBN254()
	fr := c.Fr
	const xVal = 3

	// ---- Groth16 ----
	g16 := groth16.NewEngine(c)
	sys, prog, err := circuit.CompileSource(fr, circuit.ExponentiateSource(*e))
	if err != nil {
		log.Fatal(err)
	}
	rng := ff.NewRNG(7)
	start := time.Now()
	gpk, gvk, err := g16.Setup(sys, rng)
	if err != nil {
		log.Fatal(err)
	}
	gSetup := time.Since(start)

	var x ff.Element
	fr.SetUint64(&x, xVal)
	w, err := witness.Solve(sys, prog, witness.Assignment{"x": x})
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	gProof, err := g16.Prove(sys, gpk, w, rng)
	if err != nil {
		log.Fatal(err)
	}
	gProve := time.Since(start)
	start = time.Now()
	if err := g16.Verify(gvk, gProof, w.Public); err != nil {
		log.Fatal(err)
	}
	gVerify := time.Since(start)

	// ---- PLONK ----
	pl := plonk.NewEngine(c)
	circ, xv, _ := plonk.ExponentiateCircuit(fr, *e)
	start = time.Now()
	ppk, pvk, err := pl.Setup(circ, ff.NewRNG(8))
	if err != nil {
		log.Fatal(err)
	}
	pSetup := time.Since(start)

	pw := circ.NewAssignment()
	fr.SetUint64(&pw[xv], xVal)
	for i := 0; i < circ.NumGates(); i++ {
		if fr.IsOne(&circ.QM[i]) {
			fr.Mul(&pw[circ.C[i]], &pw[circ.A[i]], &pw[circ.B[i]])
		}
	}
	var y ff.Element
	yBig := new(big.Int).Exp(big.NewInt(xVal), big.NewInt(int64(*e)), fr.Modulus())
	fr.SetBigInt(&y, yBig)
	pw[0] = y
	public := []ff.Element{y}

	start = time.Now()
	pProof, err := pl.Prove(ppk, pw, public)
	if err != nil {
		log.Fatal(err)
	}
	pProve := time.Since(start)
	start = time.Now()
	if err := pl.Verify(pvk, pProof, public); err != nil {
		log.Fatal(err)
	}
	pVerify := time.Since(start)

	fmt.Printf("statement: y = x^%d with x private (%d constraints/gates)\n\n", *e, *e)
	fmt.Printf("%-10s %12s %12s %12s\n", "scheme", "setup", "prove", "verify")
	fmt.Printf("%-10s %12v %12v %12v\n", "Groth16",
		gSetup.Round(time.Millisecond), gProve.Round(time.Millisecond), gVerify.Round(time.Millisecond))
	fmt.Printf("%-10s %12v %12v %12v\n", "PLONK",
		pSetup.Round(time.Millisecond), pProve.Round(time.Millisecond), pVerify.Round(time.Millisecond))
	fmt.Printf("\nPLONK/Groth16 proving ratio: %.2fx (the paper cites ~2x for snarkjs)\n",
		float64(pProve)/float64(gProve))
}
