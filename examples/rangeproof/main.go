// Range proof: prove that a secret value v satisfies v ≤ max for a public
// bound, without revealing v — the building block of confidential
// transactions and private credentials (the Microsoft use case the paper
// cites). The circuit bit-decomposes v and the slack max−v, constraining
// every bit to be boolean.
//
// Run with: go run ./examples/rangeproof
package main

import (
	"fmt"
	"log"
	"time"

	"zkperf/internal/circuit"
	"zkperf/internal/curve"
	"zkperf/internal/ff"
	"zkperf/internal/groth16"
	"zkperf/internal/witness"
)

func main() {
	const bits = 32
	c := curve.NewBN254()
	fr := c.Fr

	sys, prog, err := circuit.RangeCheckCircuit(fr, bits)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("circuit: %d-bit range check, %d constraints\n", bits, sys.NumConstraints())

	eng := groth16.NewEngine(c)
	rng := ff.NewRNG(uint64(time.Now().UnixNano()))
	pk, vk, err := eng.Setup(sys, rng)
	if err != nil {
		log.Fatal(err)
	}

	// Secret: my account balance is 1,500,000; public: the limit is 2^21.
	var v, slack, max ff.Element
	balance := uint64(1_500_000)
	limit := uint64(1) << 21
	fr.SetUint64(&v, balance)
	fr.SetUint64(&slack, limit-balance)
	fr.SetUint64(&max, limit)

	w, err := witness.Solve(sys, prog, witness.Assignment{"v": v, "slack": slack, "max": max})
	if err != nil {
		log.Fatal(err)
	}
	proof, err := eng.Prove(sys, pk, w, rng)
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.Verify(vk, proof, w.Public); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("proved: secret balance ≤ %d without revealing it ✓\n", limit)

	// An out-of-range value cannot even produce a witness: the slack wraps
	// to a huge field element that fails its own bit decomposition.
	overBalance := limit + 5
	fr.SetUint64(&v, overBalance)
	var negSlack ff.Element
	fr.SetUint64(&negSlack, 5)
	fr.Neg(&negSlack, &negSlack)
	if _, err := witness.Solve(sys, prog, witness.Assignment{"v": v, "slack": negSlack, "max": max}); err != nil {
		fmt.Println("out-of-range value rejected at witness time ✓")
	} else {
		log.Fatal("out-of-range witness accepted!")
	}
}
